//! The operation set: a delay-slot-free MIPS-like RISC core.
//!
//! The paper's simulator "accepts annotated big endian MIPS instruction set
//! binaries (without architected delay slots of any kind)"; this module
//! defines the equivalent core. Branch offsets are in instructions,
//! relative to the *following* instruction; jump targets are absolute byte
//! addresses.

use crate::reg::Reg;
use crate::tags::RegMask;
use std::fmt;

/// Memory access width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes (halfword).
    H,
    /// 4 bytes (word).
    W,
    /// 8 bytes (doubleword).
    D,
}

impl MemWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// Floating-point precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Prec {
    /// Single precision (operates on the low 32 bits as an `f32`).
    S,
    /// Double precision (`f64`).
    D,
}

impl Prec {
    /// Assembly suffix (`"s"` or `"d"`).
    pub const fn suffix(self) -> &'static str {
        match self {
            Prec::S => "s",
            Prec::D => "d",
        }
    }
}

/// Floating-point arithmetic operation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpArithKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl FpArithKind {
    const fn mnemonic(self) -> &'static str {
        match self {
            FpArithKind::Add => "add",
            FpArithKind::Sub => "sub",
            FpArithKind::Mul => "mul",
            FpArithKind::Div => "div",
        }
    }
}

/// Floating-point comparison condition (result written to an integer
/// register as 0/1, in place of MIPS condition flags).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpCmpCond {
    /// Equal.
    Eq,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
}

impl FpCmpCond {
    const fn mnemonic(self) -> &'static str {
        match self {
            FpCmpCond::Eq => "eq",
            FpCmpCond::Lt => "lt",
            FpCmpCond::Le => "le",
        }
    }
}

/// A short inline list of registers (at most three), used for instruction
/// source lists and `release` operands.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct RegList {
    regs: [Option<Reg>; 3],
    len: u8,
}

impl RegList {
    /// The empty list.
    pub const EMPTY: RegList = RegList { regs: [None; 3], len: 0 };

    /// Maximum capacity of the list.
    pub const CAPACITY: usize = 3;

    /// Builds a list from a slice.
    ///
    /// # Panics
    /// Panics if `regs.len() > 3`.
    pub fn from_slice(regs: &[Reg]) -> RegList {
        assert!(regs.len() <= Self::CAPACITY, "RegList overflow");
        let mut l = RegList::EMPTY;
        for &r in regs {
            l.push(r);
        }
        l
    }

    /// Appends a register.
    ///
    /// # Panics
    /// Panics if the list is full.
    pub fn push(&mut self, r: Reg) {
        assert!((self.len as usize) < Self::CAPACITY, "RegList overflow");
        self.regs[self.len as usize] = Some(r);
        self.len += 1;
    }

    /// Number of registers in the list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs.iter().take(self.len as usize).map(|r| r.unwrap())
    }

    /// The registers as a [`RegMask`].
    pub fn to_mask(&self) -> RegMask {
        self.iter().collect()
    }
}

impl fmt::Debug for RegList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl FromIterator<Reg> for RegList {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> Self {
        let mut l = RegList::EMPTY;
        for r in iter {
            l.push(r);
        }
        l
    }
}

/// An operation with its operands.
///
/// Field conventions follow MIPS: `rd` destination, `rs`/`rt` sources for
/// R-type; `rt` destination, `rs` source for I-type; `base`+`off` for
/// memory operands. Branch offsets (`off`) count instructions relative to
/// the instruction after the branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields follow the MIPS naming convention described above
pub enum Op {
    // ---- integer register-register ----
    Addu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Subu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    And {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Or {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Xor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Nor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sllv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srlv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srav {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Slt {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sltu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Mul {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Div {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Rem {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },

    // ---- integer immediate ----
    Addiu {
        rt: Reg,
        rs: Reg,
        imm: i32,
    },
    Andi {
        rt: Reg,
        rs: Reg,
        imm: i32,
    },
    Ori {
        rt: Reg,
        rs: Reg,
        imm: i32,
    },
    Xori {
        rt: Reg,
        rs: Reg,
        imm: i32,
    },
    Slti {
        rt: Reg,
        rs: Reg,
        imm: i32,
    },
    Sltiu {
        rt: Reg,
        rs: Reg,
        imm: i32,
    },
    Sll {
        rd: Reg,
        rt: Reg,
        sh: u8,
    },
    Srl {
        rd: Reg,
        rt: Reg,
        sh: u8,
    },
    Sra {
        rd: Reg,
        rt: Reg,
        sh: u8,
    },
    /// `rt = sign_extend(imm18) << 12`
    Lui {
        rt: Reg,
        imm: i32,
    },

    // ---- memory ----
    Load {
        width: MemWidth,
        signed: bool,
        rt: Reg,
        base: Reg,
        off: i32,
    },
    Store {
        width: MemWidth,
        rt: Reg,
        base: Reg,
        off: i32,
    },

    // ---- control ----
    Beq {
        rs: Reg,
        rt: Reg,
        off: i32,
    },
    Bne {
        rs: Reg,
        rt: Reg,
        off: i32,
    },
    Blez {
        rs: Reg,
        off: i32,
    },
    Bgtz {
        rs: Reg,
        off: i32,
    },
    Bltz {
        rs: Reg,
        off: i32,
    },
    Bgez {
        rs: Reg,
        off: i32,
    },
    J {
        target: u32,
    },
    Jal {
        target: u32,
    },
    Jr {
        rs: Reg,
    },
    Jalr {
        rd: Reg,
        rs: Reg,
    },

    // ---- floating point ----
    FpArith {
        kind: FpArithKind,
        prec: Prec,
        fd: Reg,
        fs: Reg,
        ft: Reg,
    },
    FpCmp {
        cond: FpCmpCond,
        prec: Prec,
        rd: Reg,
        fs: Reg,
        ft: Reg,
    },
    FpNeg {
        prec: Prec,
        fd: Reg,
        fs: Reg,
    },
    FpAbs {
        prec: Prec,
        fd: Reg,
        fs: Reg,
    },
    FpMov {
        fd: Reg,
        fs: Reg,
    },
    /// Convert word (integer register) to double (fp register).
    CvtDW {
        fd: Reg,
        rs: Reg,
    },
    /// Convert double (fp register) to word (integer register), truncating.
    CvtWD {
        rd: Reg,
        fs: Reg,
    },
    /// Move raw 64 bits from integer register `rt` to fp register `fs`.
    Dmtc1 {
        fs: Reg,
        rt: Reg,
    },
    /// Move raw 64 bits from fp register `fs` to integer register `rt`.
    Dmfc1 {
        rt: Reg,
        fs: Reg,
    },

    // ---- multiscalar / simulator control ----
    /// Forward the current values of up to three registers to successor
    /// tasks (paper Section 2.2: values a task "indicated it might produce"
    /// but did not).
    Release {
        regs: RegList,
    },
    /// Terminate the program.
    Halt,
    /// No operation.
    Nop,
}

/// Coarse functional-unit class; determines which unit executes the
/// instruction (paper Section 5.1: simple integer, complex integer, FP,
/// branch, memory units).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Simple integer ALU (1 or 2 per unit).
    SimpleInt,
    /// Complex integer (multiply/divide).
    ComplexInt,
    /// Floating point.
    Fp,
    /// Branch unit.
    Branch,
    /// Memory (address generation + cache port).
    Mem,
}

/// Fine execution class; determines operation latency (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Integer add/sub/compare/move (1 cycle).
    IntAlu,
    /// Integer multiply (4 cycles).
    IntMul,
    /// Integer divide/remainder (12 cycles).
    IntDiv,
    /// Memory load (2 cycles address+issue, plus cache time).
    Load,
    /// Memory store (1 cycle, plus cache time).
    Store,
    /// Branch or jump (1 cycle).
    Branch,
    /// FP single add/sub (2 cycles).
    FpAddS,
    /// FP single multiply (4 cycles).
    FpMulS,
    /// FP single divide (12 cycles).
    FpDivS,
    /// FP double add/sub (2 cycles).
    FpAddD,
    /// FP double multiply (5 cycles).
    FpMulD,
    /// FP double divide (18 cycles).
    FpDivD,
}

impl Op {
    /// The coarse functional-unit class.
    pub fn fu_class(&self) -> FuClass {
        use Op::*;
        match self {
            Mul { .. } | Div { .. } | Rem { .. } => FuClass::ComplexInt,
            Load { .. } | Store { .. } => FuClass::Mem,
            Beq { .. }
            | Bne { .. }
            | Blez { .. }
            | Bgtz { .. }
            | Bltz { .. }
            | Bgez { .. }
            | J { .. }
            | Jal { .. }
            | Jr { .. }
            | Jalr { .. } => FuClass::Branch,
            FpArith { .. }
            | FpCmp { .. }
            | FpNeg { .. }
            | FpAbs { .. }
            | FpMov { .. }
            | CvtDW { .. }
            | CvtWD { .. } => FuClass::Fp,
            _ => FuClass::SimpleInt,
        }
    }

    /// The fine execution class (latency selector).
    pub fn exec_class(&self) -> ExecClass {
        use Op::*;
        match self {
            Mul { .. } => ExecClass::IntMul,
            Div { .. } | Rem { .. } => ExecClass::IntDiv,
            Load { .. } => ExecClass::Load,
            Store { .. } => ExecClass::Store,
            Beq { .. }
            | Bne { .. }
            | Blez { .. }
            | Bgtz { .. }
            | Bltz { .. }
            | Bgez { .. }
            | J { .. }
            | Jal { .. }
            | Jr { .. }
            | Jalr { .. } => ExecClass::Branch,
            FpArith { kind, prec, .. } => match (kind, prec) {
                (FpArithKind::Add | FpArithKind::Sub, Prec::S) => ExecClass::FpAddS,
                (FpArithKind::Mul, Prec::S) => ExecClass::FpMulS,
                (FpArithKind::Div, Prec::S) => ExecClass::FpDivS,
                (FpArithKind::Add | FpArithKind::Sub, Prec::D) => ExecClass::FpAddD,
                (FpArithKind::Mul, Prec::D) => ExecClass::FpMulD,
                (FpArithKind::Div, Prec::D) => ExecClass::FpDivD,
            },
            FpCmp { prec, .. } | FpNeg { prec, .. } | FpAbs { prec, .. } => match prec {
                Prec::S => ExecClass::FpAddS,
                Prec::D => ExecClass::FpAddD,
            },
            FpMov { .. } | CvtDW { .. } | CvtWD { .. } => ExecClass::FpAddD,
            _ => ExecClass::IntAlu,
        }
    }

    /// The destination register, if any. Writes to `$0` are reported here
    /// but have no architectural effect.
    pub fn def(&self) -> Option<Reg> {
        use Op::*;
        match *self {
            Addu { rd, .. }
            | Subu { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Nor { rd, .. }
            | Sllv { rd, .. }
            | Srlv { rd, .. }
            | Srav { rd, .. }
            | Slt { rd, .. }
            | Sltu { rd, .. }
            | Mul { rd, .. }
            | Div { rd, .. }
            | Rem { rd, .. }
            | Sll { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Jalr { rd, .. } => Some(rd),
            Addiu { rt, .. }
            | Andi { rt, .. }
            | Ori { rt, .. }
            | Xori { rt, .. }
            | Slti { rt, .. }
            | Sltiu { rt, .. }
            | Lui { rt, .. } => Some(rt),
            Load { rt, .. } => Some(rt),
            Jal { .. } => Some(Reg::RA),
            FpArith { fd, .. }
            | FpNeg { fd, .. }
            | FpAbs { fd, .. }
            | FpMov { fd, .. }
            | CvtDW { fd, .. } => Some(fd),
            FpCmp { rd, .. } | CvtWD { rd, .. } => Some(rd),
            Dmtc1 { fs, .. } => Some(fs),
            Dmfc1 { rt, .. } => Some(rt),
            _ => None,
        }
    }

    /// The source registers.
    pub fn uses(&self) -> RegList {
        use Op::*;
        match *self {
            Addu { rs, rt, .. }
            | Subu { rs, rt, .. }
            | And { rs, rt, .. }
            | Or { rs, rt, .. }
            | Xor { rs, rt, .. }
            | Nor { rs, rt, .. }
            | Slt { rs, rt, .. }
            | Sltu { rs, rt, .. }
            | Mul { rs, rt, .. }
            | Div { rs, rt, .. }
            | Rem { rs, rt, .. }
            | Sllv { rs, rt, .. }
            | Srlv { rs, rt, .. }
            | Srav { rs, rt, .. } => RegList::from_slice(&[rs, rt]),
            Addiu { rs, .. }
            | Andi { rs, .. }
            | Ori { rs, .. }
            | Xori { rs, .. }
            | Slti { rs, .. }
            | Sltiu { rs, .. } => RegList::from_slice(&[rs]),
            Sll { rt, .. } | Srl { rt, .. } | Sra { rt, .. } => RegList::from_slice(&[rt]),
            Lui { .. } | J { .. } | Jal { .. } | Halt | Nop => RegList::EMPTY,
            // A release reads every register it broadcasts: without
            // these sources the out-of-order hazard check would let it
            // issue past an older in-flight write and send a stale
            // value to every successor task.
            Release { regs } => regs,
            Load { base, .. } => RegList::from_slice(&[base]),
            Store { rt, base, .. } => RegList::from_slice(&[rt, base]),
            Beq { rs, rt, .. } | Bne { rs, rt, .. } => RegList::from_slice(&[rs, rt]),
            Blez { rs, .. } | Bgtz { rs, .. } | Bltz { rs, .. } | Bgez { rs, .. } => {
                RegList::from_slice(&[rs])
            }
            Jr { rs } | Jalr { rs, .. } => RegList::from_slice(&[rs]),
            FpArith { fs, ft, .. } | FpCmp { fs, ft, .. } => RegList::from_slice(&[fs, ft]),
            FpNeg { fs, .. }
            | FpAbs { fs, .. }
            | FpMov { fs, .. }
            | CvtWD { fs, .. }
            | Dmfc1 { fs, .. } => RegList::from_slice(&[fs]),
            CvtDW { rs, .. } => RegList::from_slice(&[rs]),
            Dmtc1 { rt, .. } => RegList::from_slice(&[rt]),
        }
    }

    /// Whether this is a conditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Op::Beq { .. }
                | Op::Bne { .. }
                | Op::Blez { .. }
                | Op::Bgtz { .. }
                | Op::Bltz { .. }
                | Op::Bgez { .. }
        )
    }

    /// Whether this is an unconditional jump (including calls and returns).
    pub fn is_jump(&self) -> bool {
        matches!(self, Op::J { .. } | Op::Jal { .. } | Op::Jr { .. } | Op::Jalr { .. })
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        self.is_branch() || self.is_jump()
    }

    /// Whether this is a memory load.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Load { .. })
    }

    /// Whether this is a memory store.
    pub fn is_store(&self) -> bool {
        matches!(self, Op::Store { .. })
    }

    /// Mnemonic without tag suffixes.
    pub fn mnemonic(&self) -> String {
        use Op::*;
        match self {
            Addu { .. } => "addu".into(),
            Subu { .. } => "subu".into(),
            And { .. } => "and".into(),
            Or { .. } => "or".into(),
            Xor { .. } => "xor".into(),
            Nor { .. } => "nor".into(),
            Sllv { .. } => "sllv".into(),
            Srlv { .. } => "srlv".into(),
            Srav { .. } => "srav".into(),
            Slt { .. } => "slt".into(),
            Sltu { .. } => "sltu".into(),
            Mul { .. } => "mul".into(),
            Div { .. } => "div".into(),
            Rem { .. } => "rem".into(),
            Addiu { .. } => "addiu".into(),
            Andi { .. } => "andi".into(),
            Ori { .. } => "ori".into(),
            Xori { .. } => "xori".into(),
            Slti { .. } => "slti".into(),
            Sltiu { .. } => "sltiu".into(),
            Sll { .. } => "sll".into(),
            Srl { .. } => "srl".into(),
            Sra { .. } => "sra".into(),
            Lui { .. } => "lui".into(),
            Load { width, signed, .. } => {
                let base = match width {
                    MemWidth::B => "lb",
                    MemWidth::H => "lh",
                    MemWidth::W => "lw",
                    MemWidth::D => "ld",
                };
                if *signed || *width == MemWidth::D {
                    base.into()
                } else {
                    format!("{base}u")
                }
            }
            Store { width, .. } => match width {
                MemWidth::B => "sb".into(),
                MemWidth::H => "sh".into(),
                MemWidth::W => "sw".into(),
                MemWidth::D => "sd".into(),
            },
            Beq { .. } => "beq".into(),
            Bne { .. } => "bne".into(),
            Blez { .. } => "blez".into(),
            Bgtz { .. } => "bgtz".into(),
            Bltz { .. } => "bltz".into(),
            Bgez { .. } => "bgez".into(),
            J { .. } => "j".into(),
            Jal { .. } => "jal".into(),
            Jr { .. } => "jr".into(),
            Jalr { .. } => "jalr".into(),
            FpArith { kind, prec, .. } => format!("{}.{}", kind.mnemonic(), prec.suffix()),
            FpCmp { cond, prec, .. } => format!("c.{}.{}", cond.mnemonic(), prec.suffix()),
            FpNeg { prec, .. } => format!("neg.{}", prec.suffix()),
            FpAbs { prec, .. } => format!("abs.{}", prec.suffix()),
            FpMov { .. } => "mov.d".into(),
            CvtDW { .. } => "cvt.d.w".into(),
            CvtWD { .. } => "cvt.w.d".into(),
            Dmtc1 { .. } => "dmtc1".into(),
            Dmfc1 { .. } => "dmfc1".into(),
            Release { .. } => "release".into(),
            Halt => "halt".into(),
            Nop => "nop".into(),
        }
    }

    /// Operand list rendered as assembly text (empty for `nop`/`halt`).
    pub fn operands(&self) -> String {
        use Op::*;
        match *self {
            Addu { rd, rs, rt }
            | Subu { rd, rs, rt }
            | And { rd, rs, rt }
            | Or { rd, rs, rt }
            | Xor { rd, rs, rt }
            | Nor { rd, rs, rt }
            | Slt { rd, rs, rt }
            | Sltu { rd, rs, rt }
            | Mul { rd, rs, rt }
            | Div { rd, rs, rt }
            | Rem { rd, rs, rt } => format!("{rd}, {rs}, {rt}"),
            Sllv { rd, rt, rs } | Srlv { rd, rt, rs } | Srav { rd, rt, rs } => {
                format!("{rd}, {rt}, {rs}")
            }
            Addiu { rt, rs, imm }
            | Andi { rt, rs, imm }
            | Ori { rt, rs, imm }
            | Xori { rt, rs, imm }
            | Slti { rt, rs, imm }
            | Sltiu { rt, rs, imm } => {
                format!("{rt}, {rs}, {imm}")
            }
            Sll { rd, rt, sh } | Srl { rd, rt, sh } | Sra { rd, rt, sh } => {
                format!("{rd}, {rt}, {sh}")
            }
            Lui { rt, imm } => format!("{rt}, {imm}"),
            Load { rt, base, off, .. } | Store { rt, base, off, .. } => {
                format!("{rt}, {off}({base})")
            }
            Beq { rs, rt, off } | Bne { rs, rt, off } => format!("{rs}, {rt}, {off:+}"),
            Blez { rs, off } | Bgtz { rs, off } | Bltz { rs, off } | Bgez { rs, off } => {
                format!("{rs}, {off:+}")
            }
            J { target } | Jal { target } => format!("{target:#x}"),
            Jr { rs } => format!("{rs}"),
            Jalr { rd, rs } => format!("{rd}, {rs}"),
            FpArith { fd, fs, ft, .. } => format!("{fd}, {fs}, {ft}"),
            FpCmp { rd, fs, ft, .. } => format!("{rd}, {fs}, {ft}"),
            FpNeg { fd, fs, .. } | FpAbs { fd, fs, .. } | FpMov { fd, fs } => {
                format!("{fd}, {fs}")
            }
            CvtDW { fd, rs } => format!("{fd}, {rs}"),
            CvtWD { rd, fs } => format!("{rd}, {fs}"),
            Dmtc1 { fs, rt } => format!("{fs}, {rt}"),
            Dmfc1 { rt, fs } => format!("{rt}, {fs}"),
            Release { regs } => {
                let mut s = String::new();
                for (i, r) in regs.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&r.to_string());
                }
                s
            }
            Halt | Nop => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> Reg {
        Reg::int(n)
    }

    #[test]
    fn def_and_uses_cover_formats() {
        let add = Op::Addu { rd: r(3), rs: r(1), rt: r(2) };
        assert_eq!(add.def(), Some(r(3)));
        let u: Vec<Reg> = add.uses().iter().collect();
        assert_eq!(u, vec![r(1), r(2)]);

        let lw = Op::Load { width: MemWidth::W, signed: true, rt: r(8), base: r(17), off: 4 };
        assert_eq!(lw.def(), Some(r(8)));
        assert_eq!(lw.uses().iter().collect::<Vec<_>>(), vec![r(17)]);
        assert!(lw.is_load());
        assert_eq!(lw.fu_class(), FuClass::Mem);

        let sw = Op::Store { width: MemWidth::W, rt: r(8), base: r(17), off: 4 };
        assert_eq!(sw.def(), None);
        assert_eq!(sw.uses().iter().collect::<Vec<_>>(), vec![r(8), r(17)]);

        let jal = Op::Jal { target: 0x1000 };
        assert_eq!(jal.def(), Some(Reg::RA));
        assert!(jal.is_jump() && jal.is_control() && !jal.is_branch());
    }

    #[test]
    fn exec_classes_match_table1() {
        assert_eq!(Op::Mul { rd: r(1), rs: r(2), rt: r(3) }.exec_class(), ExecClass::IntMul);
        assert_eq!(Op::Div { rd: r(1), rs: r(2), rt: r(3) }.exec_class(), ExecClass::IntDiv);
        let fd = Op::FpArith {
            kind: FpArithKind::Div,
            prec: Prec::D,
            fd: Reg::fp(0),
            fs: Reg::fp(1),
            ft: Reg::fp(2),
        };
        assert_eq!(fd.exec_class(), ExecClass::FpDivD);
        assert_eq!(fd.fu_class(), FuClass::Fp);
    }

    #[test]
    fn mnemonics_and_operands_render() {
        let i = Op::Addiu { rt: r(20), rs: r(20), imm: 16 };
        assert_eq!(i.mnemonic(), "addiu");
        assert_eq!(i.operands(), "$20, $20, 16");
        let l = Op::Load { width: MemWidth::B, signed: false, rt: r(2), base: r(3), off: -1 };
        assert_eq!(l.mnemonic(), "lbu");
        assert_eq!(l.operands(), "$2, -1($3)");
        let rl = Op::Release { regs: RegList::from_slice(&[r(8), r(17)]) };
        assert_eq!(rl.operands(), "$8, $17");
    }

    #[test]
    fn reg_list_limits() {
        let mut l = RegList::EMPTY;
        assert!(l.is_empty());
        l.push(r(1));
        l.push(r(2));
        l.push(r(3));
        assert_eq!(l.len(), 3);
        assert_eq!(l.to_mask().len(), 3);
    }

    #[test]
    #[should_panic(expected = "RegList overflow")]
    fn reg_list_overflow_panics() {
        RegList::from_slice(&[r(1), r(2), r(3), r(4)]);
    }
}
