//! Multiscalar annotations: tag bits and register masks.
//!
//! Section 2.2 of the paper attaches "a few tag bits (forward and stop
//! bits, respectively) to each instruction in a task" and describes the
//! *create mask* as the statically computed set of "register values that
//! may be produced" by a task. [`TagBits`] and [`RegMask`] model exactly
//! those artifacts.

use crate::reg::{Reg, NUM_REGS};
use std::fmt;

/// The condition under which an instruction terminates its task.
///
/// Figure 4 of the paper tags the closing branch of the loop body with a
/// "Stop Always" condition; conditional variants let a task end only on one
/// outcome of a branch (used when one branch direction stays inside the
/// task).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StopCond {
    /// Not a stopping instruction.
    #[default]
    None,
    /// The task completes after this instruction, unconditionally.
    Always,
    /// The task completes only if this (branch) instruction is taken.
    IfTaken,
    /// The task completes only if this (branch) instruction is not taken.
    IfNotTaken,
}

impl StopCond {
    /// Whether the stop condition fires given the branch outcome
    /// (`taken` is ignored for [`StopCond::Always`]).
    pub fn fires(self, taken: bool) -> bool {
        match self {
            StopCond::None => false,
            StopCond::Always => true,
            StopCond::IfTaken => taken,
            StopCond::IfNotTaken => !taken,
        }
    }

    /// Assembly suffix for this condition (`""`, `"!s"`, `"!st"`, `"!sn"`).
    pub fn suffix(self) -> &'static str {
        match self {
            StopCond::None => "",
            StopCond::Always => "!s",
            StopCond::IfTaken => "!st",
            StopCond::IfNotTaken => "!sn",
        }
    }
}

/// The per-instruction multiscalar tag bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TagBits {
    /// Forward bit: this is the last update of its destination register in
    /// the task, so the result is sent to successor units at write-back.
    pub forward: bool,
    /// Stop bits: the task completes when this instruction's stop condition
    /// fires.
    pub stop: StopCond,
}

impl TagBits {
    /// Tag bits with nothing set.
    pub const NONE: TagBits = TagBits { forward: false, stop: StopCond::None };

    /// Whether any tag bit is set.
    pub fn is_any(self) -> bool {
        self.forward || self.stop != StopCond::None
    }

    /// Assembly suffix string, e.g. `"!f!s"`.
    pub fn suffix(self) -> String {
        let mut s = String::new();
        if self.forward {
            s.push_str("!f");
        }
        s.push_str(self.stop.suffix());
        s
    }
}

/// A set of architectural registers as a 64-bit vector.
///
/// Used for task *create masks*, the dynamically accumulated *accum masks*
/// (the union of the create masks of active predecessor tasks, Section 2.1)
/// and the operand of `release` instructions.
///
/// ```
/// use ms_isa::{Reg, RegMask};
/// let m: RegMask = [Reg::int(4), Reg::int(20)].into_iter().collect();
/// assert!(m.contains(Reg::int(4)));
/// assert_eq!(m.to_string(), "$4,$20");
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct RegMask(u64);

impl RegMask {
    /// The empty mask.
    pub const EMPTY: RegMask = RegMask(0);

    /// Creates a mask from its raw 64-bit representation.
    pub const fn from_bits(bits: u64) -> RegMask {
        RegMask(bits)
    }

    /// Raw 64-bit representation (bit *i* = register index *i*).
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Whether `r` is in the mask.
    pub const fn contains(self, r: Reg) -> bool {
        self.0 & (1u64 << r.index()) != 0
    }

    /// Inserts `r`. Returns whether it was newly inserted.
    pub fn insert(&mut self, r: Reg) -> bool {
        let bit = 1u64 << r.index();
        let new = self.0 & bit == 0;
        self.0 |= bit;
        new
    }

    /// Removes `r`. Returns whether it was present.
    pub fn remove(&mut self, r: Reg) -> bool {
        let bit = 1u64 << r.index();
        let had = self.0 & bit != 0;
        self.0 &= !bit;
        had
    }

    /// Set union.
    pub const fn union(self, other: RegMask) -> RegMask {
        RegMask(self.0 | other.0)
    }

    /// Set intersection.
    pub const fn intersect(self, other: RegMask) -> RegMask {
        RegMask(self.0 & other.0)
    }

    /// Set difference (`self` minus `other`).
    pub const fn difference(self, other: RegMask) -> RegMask {
        RegMask(self.0 & !other.0)
    }

    /// Whether the mask is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the mask.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over member registers in index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..NUM_REGS).filter_map(
            move |i| {
                if self.0 & (1u64 << i) != 0 {
                    Reg::from_index(i)
                } else {
                    None
                }
            },
        )
    }
}

impl FromIterator<Reg> for RegMask {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> Self {
        let mut m = RegMask::EMPTY;
        for r in iter {
            m.insert(r);
        }
        m
    }
}

impl Extend<Reg> for RegMask {
    fn extend<I: IntoIterator<Item = Reg>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Display for RegMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(none)");
        }
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for RegMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegMask({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_cond_fires_per_outcome() {
        assert!(!StopCond::None.fires(true));
        assert!(!StopCond::None.fires(false));
        assert!(StopCond::Always.fires(true));
        assert!(StopCond::Always.fires(false));
        assert!(StopCond::IfTaken.fires(true));
        assert!(!StopCond::IfTaken.fires(false));
        assert!(!StopCond::IfNotTaken.fires(true));
        assert!(StopCond::IfNotTaken.fires(false));
    }

    #[test]
    fn mask_set_algebra() {
        let a: RegMask = [Reg::int(1), Reg::int(2)].into_iter().collect();
        let b: RegMask = [Reg::int(2), Reg::fp(3)].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersect(b).len(), 1);
        assert!(a.intersect(b).contains(Reg::int(2)));
        assert_eq!(a.difference(b).len(), 1);
        assert!(a.difference(b).contains(Reg::int(1)));
    }

    #[test]
    fn insert_remove_report_change() {
        let mut m = RegMask::EMPTY;
        assert!(m.insert(Reg::int(5)));
        assert!(!m.insert(Reg::int(5)));
        assert!(m.remove(Reg::int(5)));
        assert!(!m.remove(Reg::int(5)));
        assert!(m.is_empty());
    }

    #[test]
    fn iter_visits_in_index_order() {
        let m: RegMask = [Reg::fp(0), Reg::int(3), Reg::int(30)].into_iter().collect();
        let v: Vec<Reg> = m.iter().collect();
        assert_eq!(v, vec![Reg::int(3), Reg::int(30), Reg::fp(0)]);
    }

    #[test]
    fn display_matches_paper_style() {
        let m: RegMask = [Reg::int(4), Reg::int(8), Reg::int(17), Reg::int(20), Reg::int(23)]
            .into_iter()
            .collect();
        assert_eq!(m.to_string(), "$4,$8,$17,$20,$23");
        assert_eq!(RegMask::EMPTY.to_string(), "(none)");
    }

    #[test]
    fn tag_suffixes() {
        let t = TagBits { forward: true, stop: StopCond::Always };
        assert_eq!(t.suffix(), "!f!s");
        assert!(t.is_any());
        assert!(!TagBits::NONE.is_any());
    }
}
