//! Predecoded per-instruction metadata.
//!
//! [`Op`]'s classification queries (`uses`, `def`, `fu_class`,
//! `exec_class`, the control-flow predicates) are branchy matches over a
//! ~50-variant enum. A pipeline asks them for every fetched slot, every
//! issue attempt, and — with out-of-order issue — for every (older,
//! younger) slot pair in the hazard check, so the same instruction is
//! re-classified thousands of times in a hot simulation.
//!
//! [`PredecodedProgram`] answers each of those queries once per *static*
//! instruction instead: it wraps a [`Program`] with a parallel
//! [`InstrMeta`] table, computed at construction, indexed exactly like
//! `Program::text`. The fetch stage carries the `InstrMeta` alongside
//! the `Instr` so later pipeline stages never touch the `Op` matches.
//!
//! This is the software analogue of the predecoded instruction cache
//! common in real front-ends (and of the paper's observation that tag
//! bits can be "generated on an instruction cache miss" — derived once,
//! cached, and reused).

use crate::instr::Instr;
use crate::op::{ExecClass, FuClass, RegList};
use crate::program::Program;
use crate::reg::Reg;
use crate::tags::RegMask;
use std::ops::Deref;

/// Everything the pipeline wants to know about an instruction without
/// matching on its [`Op`](crate::Op), precomputed once per static instruction.
#[derive(Clone, Copy, Debug)]
pub struct InstrMeta {
    /// Source registers (`Op::uses`).
    pub uses: RegList,
    /// Source registers as a mask (`uses.to_mask()`).
    pub uses_mask: RegMask,
    /// Destination register (`Op::def`).
    pub def: Option<Reg>,
    /// Coarse functional-unit class (`Op::fu_class`).
    pub fu_class: FuClass,
    /// Fine execution class (`Op::exec_class`).
    pub exec_class: ExecClass,
    /// `Op::is_branch` — conditional branch.
    pub is_branch: bool,
    /// `Op::is_jump` — unconditional jump/call/return.
    pub is_jump: bool,
    /// `Op::is_control` — branch or jump.
    pub is_control: bool,
    /// `Op::is_load`.
    pub is_load: bool,
    /// `Op::is_store`.
    pub is_store: bool,
}

impl InstrMeta {
    /// Classifies one instruction (the slow path the cache amortizes).
    pub fn of(instr: &Instr) -> InstrMeta {
        let op = &instr.op;
        let uses = op.uses();
        InstrMeta {
            uses,
            uses_mask: uses.to_mask(),
            def: op.def(),
            fu_class: op.fu_class(),
            exec_class: op.exec_class(),
            is_branch: op.is_branch(),
            is_jump: op.is_jump(),
            is_control: op.is_control(),
            is_load: op.is_load(),
            is_store: op.is_store(),
        }
    }

    /// Metadata for a `nop` (used for padding slots).
    pub fn nop() -> InstrMeta {
        InstrMeta::of(&Instr::new(crate::op::Op::Nop))
    }
}

/// A [`Program`] plus a parallel predecoded-metadata table.
///
/// Dereferences to the underlying [`Program`], so everything that reads
/// programs (symbol lookup, task descriptors, listings) works
/// unchanged; the pipeline's fetch stage additionally gets
/// [`PredecodedProgram::fetch`], which returns the instruction *and*
/// its metadata in one bounds-checked lookup.
#[derive(Clone, Debug)]
pub struct PredecodedProgram {
    prog: Program,
    meta: Vec<InstrMeta>,
}

impl PredecodedProgram {
    /// Predecodes every static instruction of `prog` (one linear pass).
    pub fn new(prog: Program) -> PredecodedProgram {
        let meta = prog.text.iter().map(InstrMeta::of).collect();
        PredecodedProgram { prog, meta }
    }

    /// The instruction and its predecoded metadata at byte address `pc`,
    /// if it lies in the text segment and is word-aligned. Semantically
    /// identical to [`Program::instr_at`] plus [`InstrMeta::of`].
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<(Instr, InstrMeta)> {
        if pc < self.prog.text_base || !pc.is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - self.prog.text_base) / 4) as usize;
        let instr = *self.prog.text.get(idx)?;
        Some((instr, self.meta[idx]))
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Unwraps the program, discarding the metadata table.
    pub fn into_program(self) -> Program {
        self.prog
    }
}

impl Deref for PredecodedProgram {
    type Target = Program;

    fn deref(&self) -> &Program {
        &self.prog
    }
}

impl From<Program> for PredecodedProgram {
    fn from(prog: Program) -> PredecodedProgram {
        PredecodedProgram::new(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{MemWidth, Op};
    use crate::program::TEXT_BASE;

    fn prog() -> Program {
        let mut p = Program::new();
        p.text = vec![
            Instr::new(Op::Addiu { rt: Reg::int(2), rs: Reg::int(3), imm: 1 }),
            Instr::new(Op::Load {
                width: MemWidth::W,
                signed: true,
                rt: Reg::int(4),
                base: Reg::int(29),
                off: 8,
            }),
            Instr::new(Op::Bne { rs: Reg::int(2), rt: Reg::int(0), off: -2 }),
            Instr::new(Op::Halt),
        ];
        p
    }

    #[test]
    fn meta_matches_op_queries_for_every_instruction() {
        let pd = PredecodedProgram::new(prog());
        for (i, instr) in pd.text.iter().enumerate() {
            let pc = TEXT_BASE + (i as u32) * 4;
            let (fetched, meta) = pd.fetch(pc).expect("in range");
            assert_eq!(fetched, *instr);
            assert_eq!(meta.uses, instr.op.uses());
            assert_eq!(meta.uses_mask, instr.op.uses().to_mask());
            assert_eq!(meta.def, instr.op.def());
            assert_eq!(meta.fu_class, instr.op.fu_class());
            assert_eq!(meta.exec_class, instr.op.exec_class());
            assert_eq!(meta.is_branch, instr.op.is_branch());
            assert_eq!(meta.is_jump, instr.op.is_jump());
            assert_eq!(meta.is_control, instr.op.is_control());
            assert_eq!(meta.is_load, instr.op.is_load());
            assert_eq!(meta.is_store, instr.op.is_store());
        }
    }

    #[test]
    fn fetch_matches_instr_at_semantics() {
        let pd = PredecodedProgram::new(prog());
        for pc in [0u32, TEXT_BASE - 4, TEXT_BASE + 1, TEXT_BASE + 2, pd.text_end(), u32::MAX] {
            assert_eq!(pd.fetch(pc).map(|(i, _)| i), pd.instr_at(pc), "pc={pc:#x}");
        }
        assert_eq!(pd.fetch(TEXT_BASE).map(|(i, _)| i), pd.instr_at(TEXT_BASE));
    }

    #[test]
    fn deref_exposes_program_api() {
        let pd = PredecodedProgram::new(prog());
        assert_eq!(pd.text_end(), TEXT_BASE + 16);
        assert_eq!(pd.program().text.len(), 4);
        let back = pd.clone().into_program();
        assert_eq!(back.text.len(), 4);
    }
}
