//! Binary encoding.
//!
//! Instructions encode to a 32-bit word plus a 3-bit tag nibble. Keeping
//! the tags out of the word mirrors the paper's suggestion of "a table of
//! tag bits to be associated with each static instruction" that the fetch
//! hardware concatenates on a cache miss, so "an existing ISA may be used
//! without a major overhaul".
//!
//! Formats (`op` is always bits 31..24):
//!
//! * `R3`:  `[op:8][a:6][b:6][c:6][0:6]`
//! * `I12`: `[op:8][a:6][b:6][imm:12]` (signed except `andi`/`ori`/`xori`)
//! * `SH`:  `[op:8][rd:6][rt:6][sh:6][0:6]`
//! * `L18`: `[op:8][rt:6][imm:18]` (signed; `lui` shifts left 12)
//! * `J24`: `[op:8][word_target:24]`

use crate::instr::Instr;
use crate::op::{FpArithKind, FpCmpCond, MemWidth, Op, Prec, RegList};
use crate::reg::Reg;
use crate::tags::{StopCond, TagBits};
use std::fmt;

/// Error produced when an instruction cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit in its field.
    ImmOutOfRange {
        /// The offending instruction, rendered as text.
        instr: String,
        /// The immediate value.
        value: i64,
        /// Field width in bits.
        bits: u32,
    },
    /// A jump target does not fit or is unaligned.
    BadTarget {
        /// The target address.
        target: u32,
    },
    /// A `release` is empty or names `$0`: a zero register field encodes
    /// an empty slot, so the entry would silently vanish from the binary.
    BadRelease {
        /// The offending instruction, rendered as text.
        instr: String,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { instr, value, bits } => {
                write!(f, "immediate {value} does not fit in {bits} bits in `{instr}`")
            }
            EncodeError::BadTarget { target } => {
                write!(f, "jump target {target:#x} is unaligned or out of range")
            }
            EncodeError::BadRelease { instr } => {
                write!(f, "`{instr}` is not encodable: a release must name 1..=3 registers, none of them $0")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when a word cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// A register field holds an invalid index.
    BadReg(u8),
    /// The tag nibble holds an invalid stop encoding.
    BadTags(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::BadReg(r) => write!(f, "invalid register field {r}"),
            DecodeError::BadTags(t) => write!(f, "invalid tag bits {t:#x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod opc {
    pub const NOP: u8 = 0;
    pub const ADDU: u8 = 1;
    pub const SUBU: u8 = 2;
    pub const AND: u8 = 3;
    pub const OR: u8 = 4;
    pub const XOR: u8 = 5;
    pub const NOR: u8 = 6;
    pub const SLLV: u8 = 7;
    pub const SRLV: u8 = 8;
    pub const SRAV: u8 = 9;
    pub const SLT: u8 = 10;
    pub const SLTU: u8 = 11;
    pub const MUL: u8 = 12;
    pub const DIV: u8 = 13;
    pub const REM: u8 = 14;
    pub const ADDIU: u8 = 15;
    pub const ANDI: u8 = 16;
    pub const ORI: u8 = 17;
    pub const XORI: u8 = 18;
    pub const SLTI: u8 = 19;
    pub const SLTIU: u8 = 20;
    pub const SLL: u8 = 21;
    pub const SRL: u8 = 22;
    pub const SRA: u8 = 23;
    pub const LUI: u8 = 24;
    pub const LB: u8 = 25;
    pub const LBU: u8 = 26;
    pub const LH: u8 = 27;
    pub const LHU: u8 = 28;
    pub const LW: u8 = 29;
    pub const LWU: u8 = 30;
    pub const LD: u8 = 31;
    pub const SB: u8 = 32;
    pub const SH: u8 = 33;
    pub const SW: u8 = 34;
    pub const SD: u8 = 35;
    pub const BEQ: u8 = 36;
    pub const BNE: u8 = 37;
    pub const BLEZ: u8 = 38;
    pub const BGTZ: u8 = 39;
    pub const BLTZ: u8 = 40;
    pub const BGEZ: u8 = 41;
    pub const J: u8 = 42;
    pub const JAL: u8 = 43;
    pub const JR: u8 = 44;
    pub const JALR: u8 = 45;
    pub const ADDS: u8 = 46;
    pub const SUBS: u8 = 47;
    pub const MULS: u8 = 48;
    pub const DIVS: u8 = 49;
    pub const ADDD: u8 = 50;
    pub const SUBD: u8 = 51;
    pub const MULD: u8 = 52;
    pub const DIVD: u8 = 53;
    pub const CEQS: u8 = 54;
    pub const CLTS: u8 = 55;
    pub const CLES: u8 = 56;
    pub const CEQD: u8 = 57;
    pub const CLTD: u8 = 58;
    pub const CLED: u8 = 59;
    pub const NEGS: u8 = 60;
    pub const NEGD: u8 = 61;
    pub const ABSS: u8 = 62;
    pub const ABSD: u8 = 63;
    pub const MOVD: u8 = 64;
    pub const CVTDW: u8 = 65;
    pub const CVTWD: u8 = 66;
    pub const DMTC1: u8 = 67;
    pub const DMFC1: u8 = 68;
    pub const RELEASE: u8 = 69;
    pub const HALT: u8 = 70;
}

fn r3(op: u8, a: Reg, b: Reg, c: Reg) -> u32 {
    ((op as u32) << 24)
        | ((a.index() as u32) << 18)
        | ((b.index() as u32) << 12)
        | ((c.index() as u32) << 6)
}

fn fits_signed(v: i64, bits: u32) -> bool {
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    (lo..=hi).contains(&v)
}

fn fits_unsigned(v: i64, bits: u32) -> bool {
    (0..(1i64 << bits)).contains(&v)
}

/// Validates a shift amount (0..=63) and maps it into a 6-bit register
/// field. Out-of-range amounts are a caller bug: silently wrapping them
/// would encode a different program than the one requested.
fn shamt(sh: u8, text: &Instr) -> Result<Reg, EncodeError> {
    debug_assert!(sh < 64, "shift amount {sh} out of range in `{text}`");
    if sh >= 64 {
        return Err(EncodeError::ImmOutOfRange {
            instr: text.to_string(),
            value: sh as i64,
            bits: 6,
        });
    }
    Ok(Reg::from_index(sh as usize).unwrap())
}

fn i12(op: u8, a: Reg, b: Reg, imm: i32, signed: bool, text: &Instr) -> Result<u32, EncodeError> {
    let ok = if signed { fits_signed(imm as i64, 12) } else { fits_unsigned(imm as i64, 12) };
    if !ok {
        return Err(EncodeError::ImmOutOfRange {
            instr: text.to_string(),
            value: imm as i64,
            bits: 12,
        });
    }
    Ok(((op as u32) << 24)
        | ((a.index() as u32) << 18)
        | ((b.index() as u32) << 12)
        | ((imm as u32) & 0xfff))
}

/// Encodes an instruction to `(word, tag_bits)`.
///
/// # Errors
/// Returns [`EncodeError`] if an immediate or target does not fit its
/// field; the assembler guarantees in-range operands for assembled code.
pub fn encode(instr: &Instr) -> Result<(u32, u8), EncodeError> {
    use opc::*;
    use Op::*;
    let word = match instr.op {
        Nop => 0,
        Halt => (HALT as u32) << 24,
        Addu { rd, rs, rt } => r3(ADDU, rd, rs, rt),
        Subu { rd, rs, rt } => r3(SUBU, rd, rs, rt),
        And { rd, rs, rt } => r3(AND, rd, rs, rt),
        Or { rd, rs, rt } => r3(OR, rd, rs, rt),
        Xor { rd, rs, rt } => r3(XOR, rd, rs, rt),
        Nor { rd, rs, rt } => r3(NOR, rd, rs, rt),
        Sllv { rd, rt, rs } => r3(SLLV, rd, rt, rs),
        Srlv { rd, rt, rs } => r3(SRLV, rd, rt, rs),
        Srav { rd, rt, rs } => r3(SRAV, rd, rt, rs),
        Slt { rd, rs, rt } => r3(SLT, rd, rs, rt),
        Sltu { rd, rs, rt } => r3(SLTU, rd, rs, rt),
        Mul { rd, rs, rt } => r3(MUL, rd, rs, rt),
        Div { rd, rs, rt } => r3(DIV, rd, rs, rt),
        Rem { rd, rs, rt } => r3(REM, rd, rs, rt),
        Addiu { rt, rs, imm } => i12(ADDIU, rt, rs, imm, true, instr)?,
        Andi { rt, rs, imm } => i12(ANDI, rt, rs, imm, false, instr)?,
        Ori { rt, rs, imm } => i12(ORI, rt, rs, imm, false, instr)?,
        Xori { rt, rs, imm } => i12(XORI, rt, rs, imm, false, instr)?,
        Slti { rt, rs, imm } => i12(SLTI, rt, rs, imm, true, instr)?,
        Sltiu { rt, rs, imm } => i12(SLTIU, rt, rs, imm, true, instr)?,
        Sll { rd, rt, sh } => r3(SLL, rd, rt, shamt(sh, instr)?),
        Srl { rd, rt, sh } => r3(SRL, rd, rt, shamt(sh, instr)?),
        Sra { rd, rt, sh } => r3(SRA, rd, rt, shamt(sh, instr)?),
        Lui { rt, imm } => {
            if !fits_signed(imm as i64, 18) {
                return Err(EncodeError::ImmOutOfRange {
                    instr: instr.to_string(),
                    value: imm as i64,
                    bits: 18,
                });
            }
            ((LUI as u32) << 24) | ((rt.index() as u32) << 18) | ((imm as u32) & 0x3ffff)
        }
        Load { width, signed, rt, base, off } => {
            let op = match (width, signed) {
                (MemWidth::B, true) => LB,
                (MemWidth::B, false) => LBU,
                (MemWidth::H, true) => LH,
                (MemWidth::H, false) => LHU,
                (MemWidth::W, true) => LW,
                (MemWidth::W, false) => LWU,
                (MemWidth::D, _) => LD,
            };
            i12(op, rt, base, off, true, instr)?
        }
        Store { width, rt, base, off } => {
            let op = match width {
                MemWidth::B => SB,
                MemWidth::H => SH,
                MemWidth::W => SW,
                MemWidth::D => SD,
            };
            i12(op, rt, base, off, true, instr)?
        }
        Beq { rs, rt, off } => i12(BEQ, rs, rt, off, true, instr)?,
        Bne { rs, rt, off } => i12(BNE, rs, rt, off, true, instr)?,
        Blez { rs, off } => i12(BLEZ, rs, Reg::ZERO, off, true, instr)?,
        Bgtz { rs, off } => i12(BGTZ, rs, Reg::ZERO, off, true, instr)?,
        Bltz { rs, off } => i12(BLTZ, rs, Reg::ZERO, off, true, instr)?,
        Bgez { rs, off } => i12(BGEZ, rs, Reg::ZERO, off, true, instr)?,
        J { target } | Jal { target } => {
            let op = if matches!(instr.op, J { .. }) { J } else { JAL };
            if target % 4 != 0 || (target / 4) >= (1 << 24) {
                return Err(EncodeError::BadTarget { target });
            }
            ((op as u32) << 24) | (target / 4)
        }
        Jr { rs } => r3(JR, Reg::ZERO, rs, Reg::ZERO),
        Jalr { rd, rs } => r3(JALR, rd, rs, Reg::ZERO),
        FpArith { kind, prec, fd, fs, ft } => {
            let op = match (kind, prec) {
                (FpArithKind::Add, Prec::S) => ADDS,
                (FpArithKind::Sub, Prec::S) => SUBS,
                (FpArithKind::Mul, Prec::S) => MULS,
                (FpArithKind::Div, Prec::S) => DIVS,
                (FpArithKind::Add, Prec::D) => ADDD,
                (FpArithKind::Sub, Prec::D) => SUBD,
                (FpArithKind::Mul, Prec::D) => MULD,
                (FpArithKind::Div, Prec::D) => DIVD,
            };
            r3(op, fd, fs, ft)
        }
        FpCmp { cond, prec, rd, fs, ft } => {
            let op = match (cond, prec) {
                (FpCmpCond::Eq, Prec::S) => CEQS,
                (FpCmpCond::Lt, Prec::S) => CLTS,
                (FpCmpCond::Le, Prec::S) => CLES,
                (FpCmpCond::Eq, Prec::D) => CEQD,
                (FpCmpCond::Lt, Prec::D) => CLTD,
                (FpCmpCond::Le, Prec::D) => CLED,
            };
            r3(op, rd, fs, ft)
        }
        FpNeg { prec, fd, fs } => r3(if prec == Prec::S { NEGS } else { NEGD }, fd, fs, Reg::ZERO),
        FpAbs { prec, fd, fs } => r3(if prec == Prec::S { ABSS } else { ABSD }, fd, fs, Reg::ZERO),
        FpMov { fd, fs } => r3(MOVD, fd, fs, Reg::ZERO),
        CvtDW { fd, rs } => r3(CVTDW, fd, rs, Reg::ZERO),
        CvtWD { rd, fs } => r3(CVTWD, rd, fs, Reg::ZERO),
        Dmtc1 { fs, rt } => r3(DMTC1, fs, rt, Reg::ZERO),
        Dmfc1 { rt, fs } => r3(DMFC1, rt, fs, Reg::ZERO),
        Release { regs } => {
            let mut fields = [0u32; 3];
            if regs.is_empty() {
                return Err(EncodeError::BadRelease { instr: instr.to_string() });
            }
            for (i, r) in regs.iter().enumerate() {
                debug_assert!(r.index() != 0, "release of $0 in `{instr}`");
                if r.index() == 0 {
                    // A zero field is an empty slot: the entry would be
                    // silently dropped on decode.
                    return Err(EncodeError::BadRelease { instr: instr.to_string() });
                }
                fields[i] = r.index() as u32;
            }
            ((RELEASE as u32) << 24) | (fields[0] << 18) | (fields[1] << 12) | (fields[2] << 6)
        }
    };
    let tag = encode_tags(instr.tags);
    Ok((word, tag))
}

fn encode_tags(t: TagBits) -> u8 {
    let stop = match t.stop {
        StopCond::None => 0,
        StopCond::Always => 1,
        StopCond::IfTaken => 2,
        StopCond::IfNotTaken => 3,
    };
    ((t.forward as u8) << 2) | stop
}

fn decode_tags(tag: u8) -> Result<TagBits, DecodeError> {
    if tag > 0b111 {
        return Err(DecodeError::BadTags(tag));
    }
    let stop = match tag & 0b11 {
        0 => StopCond::None,
        1 => StopCond::Always,
        2 => StopCond::IfTaken,
        _ => StopCond::IfNotTaken,
    };
    Ok(TagBits { forward: tag & 0b100 != 0, stop })
}

fn reg_field(word: u32, shift: u32) -> Result<Reg, DecodeError> {
    let v = ((word >> shift) & 0x3f) as u8;
    Reg::from_index(v as usize).ok_or(DecodeError::BadReg(v))
}

fn imm12(word: u32, signed: bool) -> i32 {
    let raw = (word & 0xfff) as i32;
    if signed && raw & 0x800 != 0 {
        raw - 0x1000
    } else {
        raw
    }
}

/// Decodes `(word, tag_bits)` back into an [`Instr`].
///
/// # Errors
/// Returns [`DecodeError`] on an unknown opcode, invalid register field,
/// or invalid tag bits.
pub fn decode(word: u32, tag: u8) -> Result<Instr, DecodeError> {
    use opc::*;
    use Op::*;
    let opb = (word >> 24) as u8;
    let a = || reg_field(word, 18);
    let b = || reg_field(word, 12);
    let c = || reg_field(word, 6);
    let op = match opb {
        NOP => Nop,
        HALT => Halt,
        ADDU => Addu { rd: a()?, rs: b()?, rt: c()? },
        SUBU => Subu { rd: a()?, rs: b()?, rt: c()? },
        AND => And { rd: a()?, rs: b()?, rt: c()? },
        OR => Or { rd: a()?, rs: b()?, rt: c()? },
        XOR => Xor { rd: a()?, rs: b()?, rt: c()? },
        NOR => Nor { rd: a()?, rs: b()?, rt: c()? },
        SLLV => Sllv { rd: a()?, rt: b()?, rs: c()? },
        SRLV => Srlv { rd: a()?, rt: b()?, rs: c()? },
        SRAV => Srav { rd: a()?, rt: b()?, rs: c()? },
        SLT => Slt { rd: a()?, rs: b()?, rt: c()? },
        SLTU => Sltu { rd: a()?, rs: b()?, rt: c()? },
        MUL => Mul { rd: a()?, rs: b()?, rt: c()? },
        DIV => Div { rd: a()?, rs: b()?, rt: c()? },
        REM => Rem { rd: a()?, rs: b()?, rt: c()? },
        ADDIU => Addiu { rt: a()?, rs: b()?, imm: imm12(word, true) },
        ANDI => Andi { rt: a()?, rs: b()?, imm: imm12(word, false) },
        ORI => Ori { rt: a()?, rs: b()?, imm: imm12(word, false) },
        XORI => Xori { rt: a()?, rs: b()?, imm: imm12(word, false) },
        SLTI => Slti { rt: a()?, rs: b()?, imm: imm12(word, true) },
        SLTIU => Sltiu { rt: a()?, rs: b()?, imm: imm12(word, true) },
        SLL => Sll { rd: a()?, rt: b()?, sh: ((word >> 6) & 0x3f) as u8 },
        SRL => Srl { rd: a()?, rt: b()?, sh: ((word >> 6) & 0x3f) as u8 },
        SRA => Sra { rd: a()?, rt: b()?, sh: ((word >> 6) & 0x3f) as u8 },
        LUI => {
            let raw = (word & 0x3ffff) as i32;
            let imm = if raw & 0x20000 != 0 { raw - 0x40000 } else { raw };
            Lui { rt: a()?, imm }
        }
        LB | LBU | LH | LHU | LW | LWU | LD => {
            let (width, signed) = match opb {
                LB => (MemWidth::B, true),
                LBU => (MemWidth::B, false),
                LH => (MemWidth::H, true),
                LHU => (MemWidth::H, false),
                LW => (MemWidth::W, true),
                LWU => (MemWidth::W, false),
                _ => (MemWidth::D, true),
            };
            Load { width, signed, rt: a()?, base: b()?, off: imm12(word, true) }
        }
        SB | SH | SW | SD => {
            let width = match opb {
                SB => MemWidth::B,
                SH => MemWidth::H,
                SW => MemWidth::W,
                _ => MemWidth::D,
            };
            Store { width, rt: a()?, base: b()?, off: imm12(word, true) }
        }
        BEQ => Beq { rs: a()?, rt: b()?, off: imm12(word, true) },
        BNE => Bne { rs: a()?, rt: b()?, off: imm12(word, true) },
        BLEZ => Blez { rs: a()?, off: imm12(word, true) },
        BGTZ => Bgtz { rs: a()?, off: imm12(word, true) },
        BLTZ => Bltz { rs: a()?, off: imm12(word, true) },
        BGEZ => Bgez { rs: a()?, off: imm12(word, true) },
        J => Op::J { target: (word & 0xff_ffff) * 4 },
        JAL => Jal { target: (word & 0xff_ffff) * 4 },
        JR => Jr { rs: b()? },
        JALR => Jalr { rd: a()?, rs: b()? },
        ADDS | SUBS | MULS | DIVS | ADDD | SUBD | MULD | DIVD => {
            let (kind, prec) = match opb {
                ADDS => (FpArithKind::Add, Prec::S),
                SUBS => (FpArithKind::Sub, Prec::S),
                MULS => (FpArithKind::Mul, Prec::S),
                DIVS => (FpArithKind::Div, Prec::S),
                ADDD => (FpArithKind::Add, Prec::D),
                SUBD => (FpArithKind::Sub, Prec::D),
                MULD => (FpArithKind::Mul, Prec::D),
                _ => (FpArithKind::Div, Prec::D),
            };
            FpArith { kind, prec, fd: a()?, fs: b()?, ft: c()? }
        }
        CEQS | CLTS | CLES | CEQD | CLTD | CLED => {
            let (cond, prec) = match opb {
                CEQS => (FpCmpCond::Eq, Prec::S),
                CLTS => (FpCmpCond::Lt, Prec::S),
                CLES => (FpCmpCond::Le, Prec::S),
                CEQD => (FpCmpCond::Eq, Prec::D),
                CLTD => (FpCmpCond::Lt, Prec::D),
                _ => (FpCmpCond::Le, Prec::D),
            };
            FpCmp { cond, prec, rd: a()?, fs: b()?, ft: c()? }
        }
        NEGS => FpNeg { prec: Prec::S, fd: a()?, fs: b()? },
        NEGD => FpNeg { prec: Prec::D, fd: a()?, fs: b()? },
        ABSS => FpAbs { prec: Prec::S, fd: a()?, fs: b()? },
        ABSD => FpAbs { prec: Prec::D, fd: a()?, fs: b()? },
        MOVD => FpMov { fd: a()?, fs: b()? },
        CVTDW => CvtDW { fd: a()?, rs: b()? },
        CVTWD => CvtWD { rd: a()?, fs: b()? },
        DMTC1 => Dmtc1 { fs: a()?, rt: b()? },
        DMFC1 => Dmfc1 { rt: a()?, fs: b()? },
        RELEASE => {
            let mut regs = RegList::EMPTY;
            for shift in [18u32, 12, 6] {
                let v = ((word >> shift) & 0x3f) as usize;
                if v != 0 {
                    regs.push(Reg::from_index(v).ok_or(DecodeError::BadReg(v as u8))?);
                }
            }
            if regs.is_empty() {
                // All-zero fields: `encode` never produces this (it rejects
                // empty releases), so the word is corrupt.
                return Err(DecodeError::BadReg(0));
            }
            Release { regs }
        }
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok(Instr { op, tags: decode_tags(tag)? })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let (w, t) = encode(&i).expect("encode");
        let back = decode(w, t).expect("decode");
        assert_eq!(back, i, "word={w:#010x} tag={t:#x}");
    }

    #[test]
    fn representative_roundtrips() {
        let r4 = Reg::int(4);
        let r8 = Reg::int(8);
        let f2 = Reg::fp(2);
        let f3 = Reg::fp(3);
        let cases = vec![
            Instr::new(Op::Nop),
            Instr::new(Op::Halt),
            Instr::new(Op::Addu { rd: r4, rs: r8, rt: Reg::int(9) }),
            Instr::new(Op::Addiu { rt: r4, rs: r8, imm: -2048 }),
            Instr::new(Op::Ori { rt: r4, rs: r8, imm: 4095 }),
            Instr::new(Op::Sll { rd: r4, rt: r8, sh: 63 }),
            Instr::new(Op::Lui { rt: r4, imm: -131072 }),
            Instr::new(Op::Load { width: MemWidth::H, signed: false, rt: r4, base: r8, off: 2047 }),
            Instr::new(Op::Store { width: MemWidth::D, rt: r4, base: r8, off: -2048 }),
            Instr::new(Op::Beq { rs: r4, rt: r8, off: -1 }).with_stop(StopCond::IfTaken),
            Instr::new(Op::J { target: 0x3ff_fffc }),
            Instr::new(Op::Jal { target: 0x1000 }),
            Instr::new(Op::Jr { rs: Reg::RA }).with_stop(StopCond::Always),
            Instr::new(Op::FpArith {
                kind: FpArithKind::Mul,
                prec: Prec::D,
                fd: f2,
                fs: f3,
                ft: Reg::fp(31),
            })
            .with_forward(),
            Instr::new(Op::FpCmp { cond: FpCmpCond::Le, prec: Prec::S, rd: r4, fs: f2, ft: f3 }),
            Instr::new(Op::CvtDW { fd: f2, rs: r4 }),
            Instr::new(Op::Dmfc1 { rt: r4, fs: f2 }),
            Instr::new(Op::Release { regs: RegList::from_slice(&[r8, Reg::int(17)]) }),
        ];
        for c in cases {
            roundtrip(c);
        }
    }

    #[test]
    fn out_of_range_immediates_fail() {
        let i = Instr::new(Op::Addiu { rt: Reg::int(1), rs: Reg::int(2), imm: 2048 });
        assert!(matches!(encode(&i), Err(EncodeError::ImmOutOfRange { .. })));
        let j = Instr::new(Op::J { target: 3 });
        assert!(matches!(encode(&j), Err(EncodeError::BadTarget { .. })));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "shift amount")]
    fn out_of_range_shift_panics_in_debug() {
        // Shift amounts must never be silently masked: a wrapped amount
        // encodes a different program than the one requested.
        let _ = encode(&Instr::new(Op::Sll { rd: Reg::int(2), rt: Reg::int(3), sh: 64 }));
    }

    #[test]
    fn empty_release_is_not_encodable() {
        let e = encode(&Instr::new(Op::Release { regs: RegList::EMPTY })).unwrap_err();
        assert!(matches!(e, EncodeError::BadRelease { .. }), "{e}");
        // And the all-zero-fields release word does not decode.
        assert!(decode((opc::RELEASE as u32) << 24, 0).is_err());
    }

    #[test]
    fn unknown_opcode_fails() {
        assert!(matches!(decode(0xff << 24, 0), Err(DecodeError::BadOpcode(0xff))));
    }

    #[test]
    fn tags_roundtrip_all_combinations() {
        for fwd in [false, true] {
            for stop in [StopCond::None, StopCond::Always, StopCond::IfTaken, StopCond::IfNotTaken]
            {
                let t = TagBits { forward: fwd, stop };
                assert_eq!(decode_tags(encode_tags(t)).unwrap(), t);
            }
        }
        assert!(decode_tags(0b1000).is_err());
    }
}
