//! The executable program image.

use crate::instr::Instr;
use crate::task::TaskDescriptor;
use std::collections::BTreeMap;
use std::fmt;

/// Base address of the text segment.
pub const TEXT_BASE: u32 = 0x1000;
/// Base address of the data segment.
pub const DATA_BASE: u32 = 0x0010_0000;
/// Initial stack pointer (stack grows down).
pub const STACK_TOP: u32 = 0x0080_0000;

/// A contiguous initialized data region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataSegment {
    /// Base byte address.
    pub base: u32,
    /// Initial contents.
    pub bytes: Vec<u8>,
}

/// A complete multiscalar program: text, initialized data, the task
/// descriptors demarcating the CFG partition, and a symbol table.
///
/// The same structure also represents a *scalar* program — one with no
/// task descriptors and no tag bits — which is how the paper's baseline
/// binaries are modelled (Table 2 compares the two).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Base address of the text segment.
    pub text_base: u32,
    /// Instructions, one per word starting at `text_base`.
    pub text: Vec<Instr>,
    /// Initialized data regions.
    pub data: Vec<DataSegment>,
    /// Task descriptors keyed by task entry address.
    pub tasks: BTreeMap<u32, TaskDescriptor>,
    /// Label addresses.
    pub symbols: BTreeMap<String, u32>,
    /// Address of the first instruction to execute.
    pub entry: u32,
}

impl Program {
    /// An empty program based at [`TEXT_BASE`].
    pub fn new() -> Program {
        Program { text_base: TEXT_BASE, entry: TEXT_BASE, ..Program::default() }
    }

    /// The instruction at byte address `pc`, if it lies in the text
    /// segment and is word-aligned.
    pub fn instr_at(&self, pc: u32) -> Option<Instr> {
        if pc < self.text_base || !pc.is_multiple_of(4) {
            return None;
        }
        self.text.get(((pc - self.text_base) / 4) as usize).copied()
    }

    /// One past the last text byte address.
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.text.len() as u32) * 4
    }

    /// The task descriptor whose entry is exactly `entry`, if any.
    pub fn task_at(&self, entry: u32) -> Option<&TaskDescriptor> {
        self.tasks.get(&entry)
    }

    /// Looks up a label address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Total dynamic size of initialized data in bytes.
    pub fn data_len(&self) -> usize {
        self.data.iter().map(|d| d.bytes.len()).sum()
    }

    /// Renders a human-readable listing: addresses, labels, task headers,
    /// and disassembly (the shape of the paper's Figure 4).
    pub fn listing(&self) -> String {
        use fmt::Write;
        let mut by_addr: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, &addr) in &self.symbols {
            by_addr.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (i, instr) in self.text.iter().enumerate() {
            let pc = self.text_base + (i as u32) * 4;
            if let Some(desc) = self.tasks.get(&pc) {
                let _ = writeln!(out, ";; {desc}");
            }
            if let Some(labels) = by_addr.get(&pc) {
                for l in labels {
                    let _ = writeln!(out, "{l}:");
                }
            }
            let _ = writeln!(out, "  {pc:#07x}:  {instr}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::reg::Reg;
    use crate::tags::RegMask;
    use crate::task::TaskTarget;

    fn tiny() -> Program {
        let mut p = Program::new();
        p.text = vec![
            Instr::new(Op::Addiu { rt: Reg::int(2), rs: Reg::ZERO, imm: 1 }),
            Instr::new(Op::Halt),
        ];
        p.symbols.insert("main".into(), TEXT_BASE);
        p.tasks.insert(
            TEXT_BASE,
            TaskDescriptor::new(TEXT_BASE, RegMask::EMPTY, vec![TaskTarget::halt()]),
        );
        p
    }

    #[test]
    fn instr_at_respects_bounds_and_alignment() {
        let p = tiny();
        assert!(p.instr_at(TEXT_BASE).is_some());
        assert!(p.instr_at(TEXT_BASE + 4).is_some());
        assert!(p.instr_at(TEXT_BASE + 8).is_none());
        assert!(p.instr_at(TEXT_BASE + 2).is_none());
        assert!(p.instr_at(0).is_none());
        assert_eq!(p.text_end(), TEXT_BASE + 8);
    }

    #[test]
    fn listing_contains_labels_tasks_and_disasm() {
        let l = tiny().listing();
        assert!(l.contains("main:"), "{l}");
        assert!(l.contains("task @0x1000"), "{l}");
        assert!(l.contains("addiu $2, $0, 1"), "{l}");
    }
}
