//! # ms-isa — the multiscalar instruction set architecture
//!
//! A MIPS-like 64-bit RISC instruction set extended with the multiscalar
//! annotations described in *Multiscalar Processors* (Sohi, Breach &
//! Vijaykumar, ISCA 1995), Section 2.2:
//!
//! * **tag bits** on every instruction — a *forward* bit (the last writer of
//!   a register forwards its result to successor tasks) and *stop* bits
//!   (conditions under which the task completes),
//! * a **`release`** instruction that forwards registers a task turned out
//!   not to produce,
//! * **task descriptors** carrying the entry point, the *create mask* (the
//!   set of registers a task may produce) and the possible successor
//!   targets used by the sequencer's control-flow prediction.
//!
//! The paper stresses that "the instruction set used to specify the task is
//! of secondary importance" — any base ISA works once the annotations are
//! attached. This crate therefore defines a small, clean RISC core
//! ([`Op`]), the annotation types ([`TagBits`], [`RegMask`],
//! [`TaskDescriptor`]), a binary encoding ([`encode`]/[`decode`]) and the
//! executable [`Program`] image consumed by the simulators.
//!
//! ```
//! use ms_isa::{Instr, Op, Reg};
//!
//! let i = Instr::new(Op::Addiu { rt: Reg::int(4), rs: Reg::int(4), imm: 16 })
//!     .with_forward();
//! assert!(i.tags.forward);
//! assert_eq!(i.to_string(), "addiu!f $4, $4, 16");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod encode;
mod instr;
mod op;
mod predecode;
mod program;
mod reg;
mod tags;
mod task;

pub use encode::{decode, encode, DecodeError, EncodeError};
pub use instr::Instr;
pub use op::{ExecClass, FpArithKind, FpCmpCond, FuClass, MemWidth, Op, Prec, RegList};
pub use predecode::{InstrMeta, PredecodedProgram};
pub use program::{DataSegment, Program, DATA_BASE, STACK_TOP, TEXT_BASE};
pub use reg::{Reg, NUM_REGS};
pub use tags::{RegMask, StopCond, TagBits};
pub use task::{TargetKind, TaskDescriptor, TaskTarget, MAX_TARGETS};
