//! Architectural register names.
//!
//! The machine has a unified 64-entry register file: integer registers
//! `$0`–`$31` (index 0–31, with `$0` hardwired to zero) and floating-point
//! registers `$f0`–`$f31` (index 32–63). A single namespace keeps the
//! multiscalar *create mask* a flat 64-bit vector, exactly one bit per
//! architectural register (see [`crate::RegMask`]).

use std::fmt;
use std::str::FromStr;

/// Total number of architectural registers (32 integer + 32 floating point).
pub const NUM_REGS: usize = 64;

/// An architectural register.
///
/// ```
/// use ms_isa::Reg;
/// let r = Reg::int(17);
/// assert_eq!(r.to_string(), "$17");
/// assert_eq!("$f2".parse::<Reg>().unwrap(), Reg::fp(2));
/// assert_eq!("$sp".parse::<Reg>().unwrap(), Reg::int(29));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Integer register `$0`, hardwired to zero.
    pub const ZERO: Reg = Reg(0);
    /// Stack pointer, `$29` by MIPS convention.
    pub const SP: Reg = Reg(29);
    /// Frame pointer, `$30`.
    pub const FP: Reg = Reg(30);
    /// Return-address register, `$31`.
    pub const RA: Reg = Reg(31);

    /// Integer register `$n`.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    pub const fn int(n: u8) -> Reg {
        assert!(n < 32, "integer register out of range");
        Reg(n)
    }

    /// Floating-point register `$f n`.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    pub const fn fp(n: u8) -> Reg {
        assert!(n < 32, "fp register out of range");
        Reg(32 + n)
    }

    /// Flat index into the unified 64-entry register file.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a register from its flat index, if in range.
    pub const fn from_index(i: usize) -> Option<Reg> {
        if i < NUM_REGS {
            Some(Reg(i as u8))
        } else {
            None
        }
    }

    /// Whether this is a floating-point register.
    pub const fn is_fp(self) -> bool {
        self.0 >= 32
    }

    /// Whether this is the hardwired-zero integer register.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 64 architectural registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "$f{}", self.0 - 32)
        } else {
            write!(f, "${}", self.0)
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a [`Reg`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

/// MIPS-convention symbolic names, in numeric order `$0`..`$31`.
const INT_ALIASES: [&str; 32] = [
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp", "fp",
    "ra",
];

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRegError { text: s.to_owned() };
        let body = s.strip_prefix('$').ok_or_else(err)?;
        if let Some(fnum) = body.strip_prefix('f') {
            if let Ok(n) = fnum.parse::<u8>() {
                if n < 32 {
                    return Ok(Reg::fp(n));
                }
            }
            // Fall through: `$fp` is the integer frame pointer.
        }
        if let Ok(n) = body.parse::<u8>() {
            if n < 32 {
                return Ok(Reg(n));
            }
            return Err(err());
        }
        INT_ALIASES.iter().position(|&a| a == body).map(|i| Reg(i as u8)).ok_or_else(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_indices_are_disjoint() {
        assert_eq!(Reg::int(0).index(), 0);
        assert_eq!(Reg::int(31).index(), 31);
        assert_eq!(Reg::fp(0).index(), 32);
        assert_eq!(Reg::fp(31).index(), 63);
        assert!(!Reg::int(31).is_fp());
        assert!(Reg::fp(0).is_fp());
    }

    #[test]
    fn display_round_trips_via_parse() {
        for r in Reg::all() {
            let shown = r.to_string();
            assert_eq!(shown.parse::<Reg>().unwrap(), r, "register {shown}");
        }
    }

    #[test]
    fn aliases_parse_to_conventional_numbers() {
        assert_eq!("$zero".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("$sp".parse::<Reg>().unwrap(), Reg::int(29));
        assert_eq!("$fp".parse::<Reg>().unwrap(), Reg::int(30));
        assert_eq!("$ra".parse::<Reg>().unwrap(), Reg::RA);
        assert_eq!("$t0".parse::<Reg>().unwrap(), Reg::int(8));
        assert_eq!("$a0".parse::<Reg>().unwrap(), Reg::int(4));
        assert_eq!("$v0".parse::<Reg>().unwrap(), Reg::int(2));
    }

    #[test]
    fn bad_names_are_rejected() {
        for bad in ["$32", "$f32", "17", "$fx", "$", "$-1", "$t10"] {
            assert!(bad.parse::<Reg>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn from_index_bounds() {
        assert_eq!(Reg::from_index(0), Some(Reg::ZERO));
        assert_eq!(Reg::from_index(63), Some(Reg::fp(31)));
        assert_eq!(Reg::from_index(64), None);
    }
}
