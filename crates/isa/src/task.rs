//! Task descriptors.
//!
//! Section 2.2: "The sequencer of a multiscalar processor requires
//! information about the program control flow structure ... which tasks are
//! possible successors of any given task". A [`TaskDescriptor`] packages
//! the task entry point, its create mask, and up to [`MAX_TARGETS`]
//! successor targets with their kind (the paper's "Targ Spec").

use crate::tags::RegMask;
use std::fmt;

/// Maximum successor targets per task descriptor (the paper's predictor
/// uses "4 targets per prediction").
pub const MAX_TARGETS: usize = 4;

/// How a successor target is resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// A static address in the program text (loop back-edge, fall-out
    /// path, call entry, ...).
    Addr(u32),
    /// The task returns to its caller: the successor address is popped
    /// from the sequencer's return address stack.
    Return,
    /// The program completes at the end of this task.
    Halt,
}

/// One possible successor of a task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TaskTarget {
    /// How the target address is determined.
    pub kind: TargetKind,
}

impl TaskTarget {
    /// A static-address target.
    pub fn addr(a: u32) -> TaskTarget {
        TaskTarget { kind: TargetKind::Addr(a) }
    }

    /// A return target.
    pub fn ret() -> TaskTarget {
        TaskTarget { kind: TargetKind::Return }
    }

    /// A program-exit target.
    pub fn halt() -> TaskTarget {
        TaskTarget { kind: TargetKind::Halt }
    }
}

/// A static task descriptor, as placed beside the program text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskDescriptor {
    /// Address of the first instruction of the task.
    pub entry: u32,
    /// Registers the task may produce (conservative, per Section 2.2).
    pub create: RegMask,
    /// Possible successor tasks (at most [`MAX_TARGETS`]).
    pub targets: Vec<TaskTarget>,
}

impl TaskDescriptor {
    /// Creates a descriptor.
    ///
    /// # Panics
    /// Panics if more than [`MAX_TARGETS`] targets are supplied or if
    /// `targets` is empty.
    pub fn new(entry: u32, create: RegMask, targets: Vec<TaskTarget>) -> TaskDescriptor {
        assert!(
            !targets.is_empty() && targets.len() <= MAX_TARGETS,
            "task descriptor must have 1..={MAX_TARGETS} targets"
        );
        TaskDescriptor { entry, create, targets }
    }

    /// The index of `addr` among this descriptor's static targets, if any.
    pub fn target_index_for(&self, addr: u32) -> Option<usize> {
        self.targets.iter().position(|t| matches!(t.kind, TargetKind::Addr(a) if a == addr))
    }
}

impl fmt::Display for TaskDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task @{:#x} create={} targets=[", self.entry, self.create)?;
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match t.kind {
                TargetKind::Addr(a) => write!(f, "{a:#x}")?,
                TargetKind::Return => write!(f, "ret")?,
                TargetKind::Halt => write!(f, "halt")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn descriptor_finds_target_indices() {
        let d = TaskDescriptor::new(
            0x1000,
            [Reg::int(20)].into_iter().collect(),
            vec![TaskTarget::addr(0x1000), TaskTarget::addr(0x1040)],
        );
        assert_eq!(d.target_index_for(0x1000), Some(0));
        assert_eq!(d.target_index_for(0x1040), Some(1));
        assert_eq!(d.target_index_for(0x2000), None);
    }

    #[test]
    #[should_panic(expected = "targets")]
    fn too_many_targets_rejected() {
        TaskDescriptor::new(0, RegMask::EMPTY, vec![TaskTarget::halt(); MAX_TARGETS + 1]);
    }

    #[test]
    fn display_is_informative() {
        let d = TaskDescriptor::new(
            0x1000,
            [Reg::int(4)].into_iter().collect(),
            vec![TaskTarget::addr(0x1000), TaskTarget::ret()],
        );
        let s = d.to_string();
        assert!(s.contains("0x1000") && s.contains("$4") && s.contains("ret"), "{s}");
    }
}
