//! Exhaustive coverage: every operation variant must display, encode and
//! decode consistently, and report sensible classes and operands.

use ms_isa::{
    decode, encode, ExecClass, FpArithKind, FpCmpCond, FuClass, Instr, MemWidth, Op, Prec, Reg,
    RegList,
};

/// One instance of every operation variant.
fn all_ops() -> Vec<Op> {
    let r = Reg::int(5);
    let s = Reg::int(6);
    let t = Reg::int(7);
    let f = Reg::fp(2);
    let g = Reg::fp(3);
    let h = Reg::fp(4);
    let mut ops = vec![
        Op::Addu { rd: r, rs: s, rt: t },
        Op::Subu { rd: r, rs: s, rt: t },
        Op::And { rd: r, rs: s, rt: t },
        Op::Or { rd: r, rs: s, rt: t },
        Op::Xor { rd: r, rs: s, rt: t },
        Op::Nor { rd: r, rs: s, rt: t },
        Op::Sllv { rd: r, rt: s, rs: t },
        Op::Srlv { rd: r, rt: s, rs: t },
        Op::Srav { rd: r, rt: s, rs: t },
        Op::Slt { rd: r, rs: s, rt: t },
        Op::Sltu { rd: r, rs: s, rt: t },
        Op::Mul { rd: r, rs: s, rt: t },
        Op::Div { rd: r, rs: s, rt: t },
        Op::Rem { rd: r, rs: s, rt: t },
        Op::Addiu { rt: r, rs: s, imm: -7 },
        Op::Andi { rt: r, rs: s, imm: 7 },
        Op::Ori { rt: r, rs: s, imm: 7 },
        Op::Xori { rt: r, rs: s, imm: 7 },
        Op::Slti { rt: r, rs: s, imm: -7 },
        Op::Sltiu { rt: r, rs: s, imm: 7 },
        Op::Sll { rd: r, rt: s, sh: 3 },
        Op::Srl { rd: r, rt: s, sh: 3 },
        Op::Sra { rd: r, rt: s, sh: 3 },
        Op::Lui { rt: r, imm: -100 },
        Op::Beq { rs: r, rt: s, off: -4 },
        Op::Bne { rs: r, rt: s, off: 4 },
        Op::Blez { rs: r, off: 1 },
        Op::Bgtz { rs: r, off: 1 },
        Op::Bltz { rs: r, off: 1 },
        Op::Bgez { rs: r, off: 1 },
        Op::J { target: 0x1000 },
        Op::Jal { target: 0x1000 },
        Op::Jr { rs: Reg::RA },
        Op::Jalr { rd: Reg::RA, rs: r },
        Op::FpMov { fd: f, fs: g },
        Op::CvtDW { fd: f, rs: r },
        Op::CvtWD { rd: r, fs: f },
        Op::Dmtc1 { fs: f, rt: r },
        Op::Dmfc1 { rt: r, fs: f },
        Op::Release { regs: RegList::from_slice(&[r, s]) },
        Op::Halt,
        Op::Nop,
    ];
    for width in [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D] {
        for signed in [true, false] {
            if width == MemWidth::D && !signed {
                continue; // ld has no unsigned form
            }
            ops.push(Op::Load { width, signed, rt: r, base: s, off: 4 });
        }
        ops.push(Op::Store { width, rt: r, base: s, off: -4 });
    }
    for kind in [FpArithKind::Add, FpArithKind::Sub, FpArithKind::Mul, FpArithKind::Div] {
        for prec in [Prec::S, Prec::D] {
            ops.push(Op::FpArith { kind, prec, fd: f, fs: g, ft: h });
        }
    }
    for cond in [FpCmpCond::Eq, FpCmpCond::Lt, FpCmpCond::Le] {
        for prec in [Prec::S, Prec::D] {
            ops.push(Op::FpCmp { cond, prec, rd: r, fs: f, ft: g });
        }
    }
    for prec in [Prec::S, Prec::D] {
        ops.push(Op::FpNeg { prec, fd: f, fs: g });
        ops.push(Op::FpAbs { prec, fd: f, fs: g });
    }
    ops
}

#[test]
fn every_variant_encodes_and_round_trips() {
    for op in all_ops() {
        let instr = Instr::new(op);
        let (word, tag) = encode(&instr).unwrap_or_else(|e| panic!("{instr} fails to encode: {e}"));
        let back = decode(word, tag).unwrap_or_else(|e| panic!("{instr}: {e}"));
        assert_eq!(back, instr, "round trip for {instr}");
    }
}

#[test]
fn every_variant_displays_nonempty_and_classifies() {
    for op in all_ops() {
        let shown = Instr::new(op).to_string();
        assert!(!shown.is_empty());
        assert!(!op.mnemonic().is_empty());
        // Classes are callable for every variant without panicking.
        let _ = op.fu_class();
        let _ = op.exec_class();
        let _ = op.def();
        let _ = op.uses();
    }
}

#[test]
fn defs_and_uses_are_in_range() {
    for op in all_ops() {
        for u in op.uses().iter() {
            assert!(u.index() < 64);
        }
        if let Some(d) = op.def() {
            assert!(d.index() < 64);
        }
    }
}

#[test]
fn control_classification_is_consistent() {
    for op in all_ops() {
        if op.is_branch() {
            assert!(op.is_control());
            assert!(!op.is_jump());
            assert_eq!(op.fu_class(), FuClass::Branch);
            assert_eq!(op.exec_class(), ExecClass::Branch);
        }
        if op.is_jump() {
            assert!(op.is_control());
            assert_eq!(op.fu_class(), FuClass::Branch);
        }
        if op.is_load() || op.is_store() {
            assert_eq!(op.fu_class(), FuClass::Mem);
        }
    }
}
