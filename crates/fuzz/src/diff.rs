//! Differential validation of one generated program.
//!
//! A program is cross-validated three ways:
//!
//! 1. **Static** — `ms-cfg::check_program` must accept an honestly
//!    annotated program (any error is a generator or checker bug) and
//!    should flag adversarially perturbed ones.
//! 2. **Differential** — the program runs on the multiscalar simulator
//!    at several [`SimConfig`] points and on the scalar reference; final
//!    memory, final registers and retire counts must agree.
//! 3. **Runtime containment** — a perturbed program the checker missed
//!    may still fail loudly (simulator fault, watchdog, debug assert);
//!    that counts as *caught*. What must never happen is a perturbed
//!    program running to completion with a different answer and nobody
//!    noticing: silent divergence is the bug class this crate hunts.

use crate::gen::{ARR_BYTES, OUT_BYTES};
use ms_asm::{assemble, AsmMode};
use ms_cfg::{check_program, Severity};
use multiscalar::{Processor, ScalarProcessor, SimConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Knobs for one validation run.
#[derive(Clone, Copy, Debug)]
pub struct ValidateOpts {
    /// Hard cycle ceiling per simulation.
    pub max_cycles: u64,
    /// Forward-progress watchdog window (cycles without a retirement).
    pub watchdog: u64,
}

impl Default for ValidateOpts {
    fn default() -> ValidateOpts {
        ValidateOpts { max_cycles: 2_000_000, watchdog: 200_000 }
    }
}

/// The multiscalar configuration points every program is run at.
pub fn config_points(opts: &ValidateOpts) -> Vec<(&'static str, SimConfig)> {
    [
        ("ms1", SimConfig::multiscalar(1)),
        ("ms2", SimConfig::multiscalar(2)),
        ("ms4-ooo2", SimConfig::multiscalar(4).issue(2).out_of_order(true)),
        ("ms8-ring1", SimConfig::multiscalar(8).ring_width(1).ring_latency(2)),
    ]
    .into_iter()
    .map(|(n, c)| (n, c.max_cycles(opts.max_cycles).watchdog(Some(opts.watchdog))))
    .collect()
}

/// The outcome of validating one program.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Whether the program met expectations for its mode.
    pub pass: bool,
    /// Machine-readable verdict name (see module docs).
    pub verdict: &'static str,
    /// Human-readable explanation (first failure, or empty).
    pub detail: String,
}

impl CaseOutcome {
    fn pass(verdict: &'static str) -> CaseOutcome {
        CaseOutcome { pass: true, verdict, detail: String::new() }
    }

    fn fail(verdict: &'static str, detail: String) -> CaseOutcome {
        CaseOutcome { pass: false, verdict, detail }
    }
}

/// Validates one rendered program source.
///
/// `adversarial` states the *expectation*: an honest program must pass
/// the checker and match the scalar reference everywhere; a perturbed
/// program may be caught statically or at runtime (pass), or turn out
/// harmless (pass) — but must not silently diverge (fail).
pub fn validate_source(src: &str, adversarial: bool, opts: &ValidateOpts) -> CaseOutcome {
    let ms_prog = match assemble(src, AsmMode::Multiscalar) {
        Ok(p) => p,
        Err(e) => return CaseOutcome::fail("assemble-error", format!("multiscalar: {e}")),
    };
    let sc_prog = match assemble(src, AsmMode::Scalar) {
        Ok(p) => p,
        Err(e) => return CaseOutcome::fail("assemble-error", format!("scalar: {e}")),
    };

    // Static cross-validation first: running a program whose
    // annotations are known-bad can trip internal debug asserts, so a
    // static catch both passes the case and skips the simulations.
    let report = check_program(&ms_prog);
    let errors: Vec<String> = report.of_severity(Severity::Error).map(|d| d.to_string()).collect();
    if !errors.is_empty() {
        return if adversarial {
            CaseOutcome::pass("caught-static")
        } else {
            CaseOutcome::fail("static-reject", errors.join("; "))
        };
    }

    let arr = match ms_prog.symbol("arr") {
        Some(a) => a,
        None => return CaseOutcome::fail("assemble-error", "no `arr` symbol".into()),
    };
    let region = (ARR_BYTES + OUT_BYTES) as usize;

    // Scalar reference. The scalar binary is identical for every
    // perturbation of a base program (annotations are stripped), so a
    // scalar failure is always a generator bug. The oracle only
    // compares final memory, registers, and instruction counts — never
    // scalar cycles — so the greedy `run_fast` path (no pipeline or
    // memory-system modelling) is a legal and much faster reference.
    let cfg = SimConfig::scalar().max_cycles(opts.max_cycles);
    let mut scalar = match ScalarProcessor::new(sc_prog, cfg) {
        Ok(s) => s,
        Err(e) => return CaseOutcome::fail("scalar-error", e.to_string()),
    };
    let sc_stats = match scalar.run_fast() {
        Ok(s) => s,
        Err(e) => return CaseOutcome::fail("scalar-error", e.to_string()),
    };
    let sc_mem = scalar.memory().read_vec(arr, region);
    let sc_regs: Vec<u64> = (0..ms_isa::NUM_REGS)
        .map(|r| scalar.reg(ms_isa::Reg::from_index(r).expect("register index")))
        .collect();

    let mut ms_counts: Option<(u64, u64)> = None;
    for (name, cfg) in config_points(opts) {
        let prog = ms_prog.clone();
        let run = catch_unwind(AssertUnwindSafe(|| -> Result<_, String> {
            let mut p = Processor::new(prog, cfg).map_err(|e| e.to_string())?;
            let stats = p.run().map_err(|e| e.to_string())?;
            let mem = p.memory().read_vec(arr, region);
            let regs = p.final_regs().ok_or_else(|| "no final registers".to_string())?;
            Ok((stats, mem, regs))
        }));
        let (stats, mem, regs) = match run {
            Ok(Ok(r)) => r,
            Ok(Err(e)) => {
                return if adversarial {
                    CaseOutcome::pass("caught-runtime")
                } else {
                    CaseOutcome::fail("runtime-error", format!("{name}: {e}"))
                };
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                return if adversarial {
                    CaseOutcome::pass("caught-runtime")
                } else {
                    CaseOutcome::fail("runtime-error", format!("{name}: panicked: {msg}"))
                };
            }
        };

        if let Some(d) = diverges(name, &stats, &mem, &regs, &sc_stats, &sc_mem, &sc_regs) {
            let verdict = if adversarial { "silent-divergence" } else { "diverged" };
            return CaseOutcome::fail(verdict, d);
        }
        // Retire counts must also agree *across* multiscalar configs:
        // the architectural path is fixed, only the schedule may vary.
        match ms_counts {
            None => ms_counts = Some((stats.instructions, stats.tasks_retired)),
            Some((instr, tasks)) => {
                if stats.instructions != instr || stats.tasks_retired != tasks {
                    let verdict = if adversarial { "silent-divergence" } else { "diverged" };
                    return CaseOutcome::fail(
                        verdict,
                        format!(
                            "{name}: retire counts {}i/{}t disagree with earlier config \
                             {instr}i/{tasks}t",
                            stats.instructions, stats.tasks_retired
                        ),
                    );
                }
            }
        }
    }

    if adversarial {
        CaseOutcome::pass("harmless")
    } else {
        CaseOutcome::pass("ok")
    }
}

#[allow(clippy::too_many_arguments)]
fn diverges(
    name: &str,
    stats: &multiscalar::RunStats,
    mem: &[u8],
    regs: &[u64; ms_isa::NUM_REGS],
    sc_stats: &multiscalar::RunStats,
    sc_mem: &[u8],
    sc_regs: &[u64],
) -> Option<String> {
    if let Some(i) = (0..mem.len()).find(|&i| mem[i] != sc_mem[i]) {
        return Some(format!(
            "{name}: memory byte arr+{i} is {:#04x}, scalar has {:#04x}",
            mem[i], sc_mem[i]
        ));
    }
    // $31 holds a return address; the multiscalar text carries
    // `release` instructions the scalar text lacks, so code addresses
    // (and only code addresses) legitimately differ between binaries.
    if let Some(r) = (0..regs.len()).find(|&r| r != 31 && regs[r] != sc_regs[r]) {
        return Some(format!(
            "{name}: register ${r} is {:#x}, scalar has {:#x}",
            regs[r], sc_regs[r]
        ));
    }
    // The multiscalar binary carries `release` instructions the scalar
    // one lacks, so retired-instruction counts may only grow.
    if stats.instructions < sc_stats.instructions {
        return Some(format!(
            "{name}: retired {} instructions, fewer than the scalar reference's {}",
            stats.instructions, sc_stats.instructions
        ));
    }
    None
}
