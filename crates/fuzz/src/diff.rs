//! Differential validation of one generated program.
//!
//! A program is cross-validated three ways:
//!
//! 1. **Static** — `ms-cfg::check_program` must accept an honestly
//!    annotated program (any error is a generator or checker bug) and
//!    should flag adversarially perturbed ones.
//! 2. **Differential** — the program runs on the multiscalar simulator
//!    at several [`SimConfig`] points and on the scalar reference; final
//!    memory, final registers and retire counts must agree.
//! 3. **Runtime containment** — a perturbed program the checker missed
//!    may still fail loudly (simulator fault, watchdog, debug assert);
//!    that counts as *caught*. What must never happen is a perturbed
//!    program running to completion with a different answer and nobody
//!    noticing: silent divergence is the bug class this crate hunts.
//!
//! The core oracle, [`validate_pair`], takes an already-assembled
//! multiscalar/scalar program pair and the memory regions to compare, so
//! it also serves the task partitioner: a partitioned program is checked
//! against the *original* scalar binary it was derived from.

use crate::gen::{ARR_BYTES, OUT_BYTES};
use ms_asm::{assemble, AsmMode};
use ms_cfg::{check_program, Severity};
use ms_isa::{Program, DATA_BASE};
use multiscalar::{Processor, ScalarProcessor, SimConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Knobs for one validation run.
#[derive(Clone, Copy, Debug)]
pub struct ValidateOpts {
    /// Hard cycle ceiling per simulation.
    pub max_cycles: u64,
    /// Forward-progress watchdog window (cycles without a retirement).
    pub watchdog: u64,
}

impl Default for ValidateOpts {
    fn default() -> ValidateOpts {
        ValidateOpts { max_cycles: 2_000_000, watchdog: 200_000 }
    }
}

/// The multiscalar configuration points every fuzz program is run at.
pub fn config_points(opts: &ValidateOpts) -> Vec<(&'static str, SimConfig)> {
    [
        ("ms1", SimConfig::multiscalar(1)),
        ("ms2", SimConfig::multiscalar(2)),
        ("ms4-ooo2", SimConfig::multiscalar(4).issue(2).out_of_order(true)),
        ("ms8-ring1", SimConfig::multiscalar(8).ring_width(1).ring_latency(2)),
    ]
    .into_iter()
    .map(|(n, c)| (n, c.max_cycles(opts.max_cycles).watchdog(Some(opts.watchdog))))
    .collect()
}

/// The configuration points partitioned programs are validated at: one
/// unit (pure sequencing), a wide out-of-order point, and a narrow ring —
/// the acceptance spread for machine-derived task boundaries.
pub fn partition_config_points(opts: &ValidateOpts) -> Vec<(&'static str, SimConfig)> {
    [
        ("ms1", SimConfig::multiscalar(1)),
        ("ms4-ooo2", SimConfig::multiscalar(4).issue(2).out_of_order(true)),
        ("ms8-ring1", SimConfig::multiscalar(8).ring_width(1).ring_latency(2)),
    ]
    .into_iter()
    .map(|(n, c)| (n, c.max_cycles(opts.max_cycles).watchdog(Some(opts.watchdog))))
    .collect()
}

/// The data-memory window to compare for `prog`: from the data base to
/// 64 KiB past the last initialized segment. The slack covers `.space`
/// tails (result arrays reserve address space without materializing
/// bytes); the stack is deliberately excluded — it holds saved `$31`
/// return addresses, which legitimately differ when inserted
/// instructions shift code addresses.
pub fn data_window(prog: &Program) -> (u32, usize) {
    const SLACK: u32 = 64 * 1024;
    let extent = prog.data.iter().map(|s| s.base + s.bytes.len() as u32).max().unwrap_or(DATA_BASE);
    (DATA_BASE, (extent.max(DATA_BASE) - DATA_BASE + SLACK) as usize)
}

/// The outcome of validating one program.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Whether the program met expectations for its mode.
    pub pass: bool,
    /// Machine-readable verdict name (see module docs).
    pub verdict: &'static str,
    /// Human-readable explanation (first failure, or empty).
    pub detail: String,
}

impl CaseOutcome {
    fn pass(verdict: &'static str) -> CaseOutcome {
        CaseOutcome { pass: true, verdict, detail: String::new() }
    }

    fn fail(verdict: &'static str, detail: String) -> CaseOutcome {
        CaseOutcome { pass: false, verdict, detail }
    }
}

/// Validates one rendered program source.
///
/// `adversarial` states the *expectation*: an honest program must pass
/// the checker and match the scalar reference everywhere; a perturbed
/// program may be caught statically or at runtime (pass), or turn out
/// harmless (pass) — but must not silently diverge (fail).
pub fn validate_source(src: &str, adversarial: bool, opts: &ValidateOpts) -> CaseOutcome {
    let ms_prog = match assemble(src, AsmMode::Multiscalar) {
        Ok(p) => p,
        Err(e) => return CaseOutcome::fail("assemble-error", format!("multiscalar: {e}")),
    };
    let sc_prog = match assemble(src, AsmMode::Scalar) {
        Ok(p) => p,
        Err(e) => return CaseOutcome::fail("assemble-error", format!("scalar: {e}")),
    };
    // Fuzz-generated programs anchor their results at `arr`; hand-written
    // repros without one are compared over the whole data window.
    let regions = match ms_prog.symbol("arr") {
        Some(arr) => [(arr, (ARR_BYTES + OUT_BYTES) as usize)],
        None => [data_window(&ms_prog)],
    };
    validate_pair(&ms_prog, &sc_prog, &regions, adversarial, opts, &config_points(opts))
}

/// Validates an assembled multiscalar program against a scalar reference
/// binary: the static checker must accept `ms_prog`, and at every config
/// in `configs` the final bytes of each `(base, len)` region in
/// `regions`, the final registers (except `$31`) and the retire counts
/// must match the scalar run. Retire counts must also agree *across*
/// multiscalar configs — the architectural path is fixed, only the
/// schedule may vary.
pub fn validate_pair(
    ms_prog: &Program,
    sc_prog: &Program,
    regions: &[(u32, usize)],
    adversarial: bool,
    opts: &ValidateOpts,
    configs: &[(&'static str, SimConfig)],
) -> CaseOutcome {
    // Static cross-validation first: running a program whose
    // annotations are known-bad can trip internal debug asserts, so a
    // static catch both passes the case and skips the simulations.
    let report = check_program(ms_prog);
    let errors: Vec<String> = report.of_severity(Severity::Error).map(|d| d.to_string()).collect();
    if !errors.is_empty() {
        return if adversarial {
            CaseOutcome::pass("caught-static")
        } else {
            CaseOutcome::fail("static-reject", errors.join("; "))
        };
    }

    // Scalar reference. The oracle only compares final memory,
    // registers, and instruction counts — never scalar cycles — so the
    // greedy `run_fast` path (no pipeline or memory-system modelling)
    // is a legal and much faster reference.
    let cfg = SimConfig::scalar().max_cycles(opts.max_cycles);
    let mut scalar = match ScalarProcessor::new(sc_prog.clone(), cfg) {
        Ok(s) => s,
        Err(e) => return CaseOutcome::fail("scalar-error", e.to_string()),
    };
    let sc_stats = match scalar.run_fast() {
        Ok(s) => s,
        Err(e) => return CaseOutcome::fail("scalar-error", e.to_string()),
    };
    let sc_mem: Vec<Vec<u8>> =
        regions.iter().map(|&(base, len)| scalar.memory().read_vec(base, len)).collect();
    let sc_regs: Vec<u64> = (0..ms_isa::NUM_REGS)
        .map(|r| scalar.reg(ms_isa::Reg::from_index(r).expect("register index")))
        .collect();

    let mut ms_counts: Option<(u64, u64)> = None;
    for (name, cfg) in configs {
        let prog = ms_prog.clone();
        let cfg = *cfg;
        let run = catch_unwind(AssertUnwindSafe(|| -> Result<_, String> {
            let mut p = Processor::new(prog, cfg).map_err(|e| e.to_string())?;
            let stats = p.run().map_err(|e| e.to_string())?;
            let mem: Vec<Vec<u8>> =
                regions.iter().map(|&(base, len)| p.memory().read_vec(base, len)).collect();
            let regs = p.final_regs().ok_or_else(|| "no final registers".to_string())?;
            Ok((stats, mem, regs))
        }));
        let (stats, mem, regs) = match run {
            Ok(Ok(r)) => r,
            Ok(Err(e)) => {
                return if adversarial {
                    CaseOutcome::pass("caught-runtime")
                } else {
                    CaseOutcome::fail("runtime-error", format!("{name}: {e}"))
                };
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                return if adversarial {
                    CaseOutcome::pass("caught-runtime")
                } else {
                    CaseOutcome::fail("runtime-error", format!("{name}: panicked: {msg}"))
                };
            }
        };

        if let Some(d) = diverges(name, regions, &stats, &mem, &regs, &sc_stats, &sc_mem, &sc_regs)
        {
            let verdict = if adversarial { "silent-divergence" } else { "diverged" };
            return CaseOutcome::fail(verdict, d);
        }
        match ms_counts {
            None => ms_counts = Some((stats.instructions, stats.tasks_retired)),
            Some((instr, tasks)) => {
                if stats.instructions != instr || stats.tasks_retired != tasks {
                    let verdict = if adversarial { "silent-divergence" } else { "diverged" };
                    return CaseOutcome::fail(
                        verdict,
                        format!(
                            "{name}: retire counts {}i/{}t disagree with earlier config \
                             {instr}i/{tasks}t",
                            stats.instructions, stats.tasks_retired
                        ),
                    );
                }
            }
        }
    }

    if adversarial {
        CaseOutcome::pass("harmless")
    } else {
        CaseOutcome::pass("ok")
    }
}

#[allow(clippy::too_many_arguments)]
fn diverges(
    name: &str,
    regions: &[(u32, usize)],
    stats: &multiscalar::RunStats,
    mem: &[Vec<u8>],
    regs: &[u64; ms_isa::NUM_REGS],
    sc_stats: &multiscalar::RunStats,
    sc_mem: &[Vec<u8>],
    sc_regs: &[u64],
) -> Option<String> {
    for (ri, &(base, _)) in regions.iter().enumerate() {
        if let Some(i) = (0..mem[ri].len()).find(|&i| mem[ri][i] != sc_mem[ri][i]) {
            return Some(format!(
                "{name}: memory byte {:#x} is {:#04x}, scalar has {:#04x}",
                base + i as u32,
                mem[ri][i],
                sc_mem[ri][i]
            ));
        }
    }
    // $31 holds a return address; the multiscalar text carries
    // instructions the scalar text lacks (releases, boundary jumps), so
    // code addresses — and only code addresses — legitimately differ
    // between binaries.
    if let Some(r) = (0..regs.len()).find(|&r| r != 31 && regs[r] != sc_regs[r]) {
        return Some(format!(
            "{name}: register ${r} is {:#x}, scalar has {:#x}",
            regs[r], sc_regs[r]
        ));
    }
    // The multiscalar binary carries instructions the scalar one lacks,
    // so retired-instruction counts may only grow.
    if stats.instructions < sc_stats.instructions {
        return Some(format!(
            "{name}: retired {} instructions, fewer than the scalar reference's {}",
            stats.instructions, sc_stats.instructions
        ));
    }
    None
}
