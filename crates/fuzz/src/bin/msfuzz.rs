//! `msfuzz` — the differential-fuzzing corpus runner.
//!
//! ```text
//! cargo run --release -p ms-fuzz --bin msfuzz -- \
//!     [--seed B] [--count N] [--mode normal|adversarial|mixed] \
//!     [--max-cycles N] [--watchdog N] [--no-shrink] \
//!     [--out PATH] [--repro-dir DIR] \
//!     [--repro FILE.s] [--repro-seed S] [--emit-seed S]
//! ```
//!
//! Generates `N` seeded programs, validates each differentially
//! (multiscalar at several configurations vs the scalar reference)
//! and against the `ms-cfg` static checker, prints a summary, and
//! writes a deterministic JSON report (default `FUZZ_report.json`;
//! schema `multiscalar-fuzz/v1`). Every failure is minimized by the
//! delta-debugging shrinker and written to `--repro-dir` as a
//! standalone `.s` file, along with the exact command reproducing it.
//! Exits non-zero on any failure.
//!
//! `--repro FILE.s` validates one assembly file under honest
//! expectations (the way to re-check a minimized repro); `--repro-seed
//! S` re-runs one generated case by its derived seed; `--emit-seed S`
//! prints the generated source without running it.

use ms_fuzz::diff::validate_source;
use ms_fuzz::{gen, run_corpus, run_one, Campaign, Mode};

fn usage() -> ! {
    eprintln!(
        "usage: msfuzz [--seed B] [--count N] [--mode normal|adversarial|mixed] \
         [--max-cycles N] [--watchdog N] [--no-shrink] [--out PATH] [--repro-dir DIR] \
         [--repro FILE.s] [--repro-seed S] [--emit-seed S]"
    );
    std::process::exit(2);
}

fn parse_u64(v: Option<String>, what: &str) -> u64 {
    let v = v.unwrap_or_else(|| {
        eprintln!("{what} needs an integer");
        usage()
    });
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    };
    parsed.unwrap_or_else(|| {
        eprintln!("{what}: `{v}` is not an integer");
        usage()
    })
}

fn main() {
    let mut campaign = Campaign::default();
    let mut out_path = "FUZZ_report.json".to_string();
    let mut repro_dir = ".".to_string();
    let mut repro_file: Option<String> = None;
    let mut repro_seed: Option<u64> = None;
    let mut emit_seed: Option<u64> = None;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => campaign.seed = parse_u64(it.next(), "--seed"),
            "--count" => {
                campaign.count = parse_u64(it.next(), "--count");
                if campaign.count == 0 {
                    eprintln!("--count needs a positive integer");
                    usage();
                }
            }
            "--mode" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--mode needs normal|adversarial|mixed");
                    usage()
                });
                campaign.mode = Mode::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown mode `{v}` (use normal|adversarial|mixed)");
                    usage()
                });
            }
            "--max-cycles" => campaign.opts.max_cycles = parse_u64(it.next(), "--max-cycles"),
            "--watchdog" => campaign.opts.watchdog = parse_u64(it.next(), "--watchdog"),
            "--no-shrink" => campaign.shrink = false,
            "--out" => {
                out_path = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    usage()
                });
            }
            "--repro-dir" => {
                repro_dir = it.next().unwrap_or_else(|| {
                    eprintln!("--repro-dir needs a directory");
                    usage()
                });
            }
            "--repro" => {
                repro_file = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--repro needs a .s file");
                    usage()
                }));
            }
            "--repro-seed" => repro_seed = Some(parse_u64(it.next(), "--repro-seed")),
            "--emit-seed" => emit_seed = Some(parse_u64(it.next(), "--emit-seed")),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    if let Some(seed) = emit_seed {
        let adversarial = campaign.mode == Mode::Adversarial;
        print!("{}", gen::render(&gen::generate(seed, adversarial)));
        return;
    }

    if let Some(path) = repro_file {
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("reading {path}: {e}");
            std::process::exit(2);
        });
        let outcome = validate_source(&src, false, &campaign.opts);
        println!("msfuzz: {path}: {}{}", outcome.verdict, prefixed(&outcome.detail));
        std::process::exit(if outcome.pass { 0 } else { 1 });
    }

    if let Some(seed) = repro_seed {
        let adversarial = campaign.mode == Mode::Adversarial;
        let (outcome, src) = run_one(seed, adversarial, &campaign.opts);
        println!("msfuzz: seed {seed:#x}: {}{}", outcome.verdict, prefixed(&outcome.detail));
        if !outcome.pass {
            let path = format!("{repro_dir}/fuzz-repro-{seed:x}.s");
            write_or_die(&path, &src);
            eprintln!("wrote {path}");
            std::process::exit(1);
        }
        return;
    }

    let report = run_corpus(&campaign);
    let total: u64 = report.verdicts.values().sum();
    let verdicts: Vec<String> = report.verdicts.iter().map(|(k, v)| format!("{v} {k}")).collect();
    println!(
        "msfuzz: {} programs (seed {:#x}, {}): {} passed ({}), {} failed",
        campaign.count,
        campaign.seed,
        campaign.mode.name(),
        total,
        verdicts.join(", "),
        report.failures.len(),
    );
    for f in &report.failures {
        println!(
            "FAIL #{} seed {:#x}{}: {}{}\n  repro: {}",
            f.index,
            f.case_seed,
            f.perturbation.as_deref().map(|p| format!(" ({p})")).unwrap_or_default(),
            f.verdict,
            prefixed(&f.detail),
            f.repro,
        );
        let path = format!("{}/fuzz-repro-{:x}.s", repro_dir, f.case_seed);
        write_or_die(&path, &f.min_source);
        eprintln!("wrote {path}");
    }

    write_or_die(&out_path, &report.to_json());
    eprintln!("wrote {out_path}");
    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}

fn prefixed(detail: &str) -> String {
    if detail.is_empty() {
        String::new()
    } else {
        format!(": {detail}")
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("writing {path}: {e}");
        std::process::exit(1);
    }
}
