#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Differential fuzzing for the multiscalar simulator.
//!
//! `ms-fuzz` generates annotated multiscalar assembly programs from a
//! seed ([`gen`]), runs each differentially against the scalar
//! reference at several simulator configurations, and cross-validates
//! the result with the `ms-cfg` static checker ([`diff`]). Honest
//! programs are correct by construction and must match everywhere;
//! adversarial programs carry one seeded annotation bug that must be
//! flagged statically or caught at runtime — a perturbed program that
//! runs to completion with a different answer is a *silent divergence*,
//! the bug class the fuzzer exists to find. Failures are minimized by a
//! deterministic delta-debugging shrinker ([`shrink`]) into standalone
//! `.s` repros.
//!
//! The `msfuzz` binary drives seeded corpus runs with a deterministic
//! JSON report (schema `multiscalar-fuzz/v1`, same conventions as
//! `mschaos`). Building with `--features fuzz-teeth` sabotages the
//! annotation-derivation rule to prove the corpus has teeth.

pub mod diff;
pub mod gen;
pub mod shrink;

use diff::{validate_source, ValidateOpts};
use gen::{generate, render};
use ms_trace::json;
use std::collections::BTreeMap;

/// splitmix64 finalizer — per-case seeds are derived, not sequential,
/// so any case can be reproduced in isolation.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which expectation regime the corpus runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Honest annotations only: everything must validate clean.
    Normal,
    /// Every program carries one perturbation.
    Adversarial,
    /// Alternate honest and perturbed programs (the default).
    Mixed,
}

impl Mode {
    /// Parses a CLI mode name.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "normal" => Some(Mode::Normal),
            "adversarial" => Some(Mode::Adversarial),
            "mixed" => Some(Mode::Mixed),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Normal => "normal",
            Mode::Adversarial => "adversarial",
            Mode::Mixed => "mixed",
        }
    }

    fn adversarial(&self, index: u64) -> bool {
        match self {
            Mode::Normal => false,
            Mode::Adversarial => true,
            Mode::Mixed => index % 2 == 1,
        }
    }
}

/// A corpus run configuration.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Base seed; case `i` uses `mix(seed ^ i)`.
    pub seed: u64,
    /// Number of programs to generate and validate.
    pub count: u64,
    /// Expectation regime.
    pub mode: Mode,
    /// Simulation knobs.
    pub opts: ValidateOpts,
    /// Whether failures are minimized before reporting.
    pub shrink: bool,
}

impl Default for Campaign {
    fn default() -> Campaign {
        Campaign {
            seed: 0xF00D,
            count: 100,
            mode: Mode::Mixed,
            opts: ValidateOpts::default(),
            shrink: true,
        }
    }
}

/// One failing case, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Case index within the corpus.
    pub index: u64,
    /// The derived per-case seed (`msfuzz --repro-seed` input).
    pub case_seed: u64,
    /// Whether the case ran under adversarial expectations.
    pub adversarial: bool,
    /// Name of the applied perturbation, if any.
    pub perturbation: Option<String>,
    /// Failing verdict (`diverged`, `silent-divergence`, ...).
    pub verdict: &'static str,
    /// Human-readable first mismatch.
    pub detail: String,
    /// Minimized standalone source (the original source if shrinking
    /// was disabled or made no progress).
    pub min_source: String,
    /// Exact command reproducing the case from scratch.
    pub repro: String,
}

/// The outcome of a corpus run.
#[derive(Clone, Debug)]
pub struct Report {
    /// The campaign that produced this report.
    pub campaign: Campaign,
    /// Pass-verdict histogram (`ok`, `caught-static`, ...).
    pub verdicts: BTreeMap<&'static str, u64>,
    /// All failing cases, in corpus order.
    pub failures: Vec<Failure>,
}

impl Report {
    /// Serializes the report as deterministic JSON (schema
    /// `multiscalar-fuzz/v1`): fixed field order, no timestamps, no
    /// floats — identical runs produce identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"multiscalar-fuzz/v1\"");
        out.push_str(&format!(",\"seed\":{}", self.campaign.seed));
        out.push_str(&format!(",\"count\":{}", self.campaign.count));
        out.push_str(&format!(",\"mode\":{}", json::string(self.campaign.mode.name())));
        out.push_str(&format!(",\"max_cycles\":{}", self.campaign.opts.max_cycles));
        out.push_str(&format!(",\"watchdog\":{}", self.campaign.opts.watchdog));
        out.push_str(&format!(",\"teeth\":{}", cfg!(feature = "fuzz-teeth")));
        out.push_str(",\"verdicts\":{");
        for (i, (k, v)) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json::string(k)));
        }
        out.push_str("},\"failures\":[");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"case_seed\":{},\"adversarial\":{},\"perturbation\":{},\
                 \"verdict\":{},\"detail\":{},\"repro\":{}}}",
                f.index,
                f.case_seed,
                f.adversarial,
                f.perturbation.as_deref().map_or("null".into(), json::string),
                json::string(f.verdict),
                json::string(&f.detail),
                json::string(&f.repro),
            ));
        }
        out.push_str(&format!("],\"failure_count\":{}}}", self.failures.len()));
        out
    }
}

/// Runs a corpus: generates `count` programs, validates each, shrinks
/// the failures. Fully deterministic for a fixed campaign.
pub fn run_corpus(campaign: &Campaign) -> Report {
    let mut verdicts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut failures = Vec::new();

    for i in 0..campaign.count {
        let case_seed = mix(campaign.seed ^ i);
        let adversarial = campaign.mode.adversarial(i);
        let prog = generate(case_seed, adversarial);
        let src = render(&prog);
        let outcome = validate_source(&src, adversarial, &campaign.opts);
        if outcome.pass {
            *verdicts.entry(outcome.verdict).or_insert(0) += 1;
            continue;
        }
        let min_source = if campaign.shrink {
            let (min, _) = shrink::minimize(&prog, adversarial, &campaign.opts);
            render(&min)
        } else {
            src
        };
        failures.push(Failure {
            index: i,
            case_seed,
            adversarial,
            perturbation: prog.perturbation.as_ref().map(|p| p.name().to_string()),
            verdict: outcome.verdict,
            detail: outcome.detail,
            min_source,
            repro: format!(
                "msfuzz --repro-seed {case_seed}{}",
                if adversarial { " --mode adversarial" } else { "" }
            ),
        });
    }

    Report { campaign: campaign.clone(), verdicts, failures }
}

/// Validates the single program derived from `case_seed` (the
/// `--repro-seed` path). Returns the outcome and the rendered source.
pub fn run_one(
    case_seed: u64,
    adversarial: bool,
    opts: &ValidateOpts,
) -> (diff::CaseOutcome, String) {
    let prog = generate(case_seed, adversarial);
    let src = render(&prog);
    let outcome = validate_source(&src, adversarial, opts);
    (outcome, src)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ValidateOpts {
        ValidateOpts { max_cycles: 500_000, watchdog: 100_000 }
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let a = render(&generate(seed, true));
            let b = render(&generate(seed, true));
            assert_eq!(a, b, "seed {seed} rendered differently twice");
        }
    }

    #[test]
    fn derived_forward_bit_lands_on_the_last_write() {
        use gen::{derive, BodyOp, GenTask, TaskKind};
        let task = GenTask {
            kind: TaskKind::Straight,
            early_exit: None,
            body: vec![
                BodyOp::AluImm { kind: 0, rd: 8, ra: 8, imm: 1 },
                BodyOp::AluImm { kind: 0, rd: 8, ra: 8, imm: 2 },
                BodyOp::AluImm { kind: 0, rd: 9, ra: 9, imm: 3 },
            ],
            end_release: Vec::new(),
        };
        let d = derive(&task, &[]);
        assert_eq!(d.create, vec![8, 9]);
        #[cfg(not(feature = "fuzz-teeth"))]
        assert_eq!(d.forwards, vec![(8, 1), (9, 2)]);
        #[cfg(feature = "fuzz-teeth")]
        assert_eq!(d.forwards, vec![(8, 0), (9, 2)]);
    }

    #[cfg(not(feature = "fuzz-teeth"))]
    #[test]
    fn small_corpus_passes_clean() {
        let campaign = Campaign {
            seed: 0xC0FFEE,
            count: 24,
            mode: Mode::Mixed,
            opts: quick_opts(),
            shrink: false,
        };
        let report = run_corpus(&campaign);
        assert!(
            report.failures.is_empty(),
            "corpus failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| format!("#{} {} ({})", f.index, f.verdict, f.detail))
                .collect::<Vec<_>>()
        );
        // Mixed mode must actually exercise both regimes.
        assert!(report.verdicts.get("ok").copied().unwrap_or(0) > 0);
        let caught = report.verdicts.get("caught-static").copied().unwrap_or(0)
            + report.verdicts.get("caught-runtime").copied().unwrap_or(0)
            + report.verdicts.get("harmless").copied().unwrap_or(0);
        assert!(caught > 0, "no adversarial case was exercised: {:?}", report.verdicts);
    }

    #[cfg(not(feature = "fuzz-teeth"))]
    #[test]
    fn corpus_report_is_byte_deterministic() {
        let campaign =
            Campaign { seed: 7, count: 8, mode: Mode::Mixed, opts: quick_opts(), shrink: false };
        let a = run_corpus(&campaign).to_json();
        let b = run_corpus(&campaign).to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"multiscalar-fuzz/v1\""));
    }

    /// With `--features fuzz-teeth` the derivation rule is sabotaged
    /// (forward bits land on the first write of multiply-written
    /// registers). A fixed-seed honest corpus must notice: either the
    /// static checker rejects the program (stale-communication rule) or
    /// the differential run diverges — both are corpus failures.
    #[cfg(feature = "fuzz-teeth")]
    #[test]
    fn sabotaged_derivation_is_caught_by_the_corpus() {
        let campaign = Campaign {
            seed: 0xF00D,
            count: 40,
            mode: Mode::Normal,
            opts: quick_opts(),
            shrink: false,
        };
        let report = run_corpus(&campaign);
        assert!(
            !report.failures.is_empty(),
            "the fuzz-teeth sabotage went unnoticed over {} programs",
            campaign.count
        );
        // And the catch must be loud in the expected way: a stale
        // forward is a static error now.
        assert!(
            report.failures.iter().any(|f| f.verdict == "static-reject"),
            "expected at least one static-reject, got: {:?}",
            report.failures.iter().map(|f| f.verdict).collect::<Vec<_>>()
        );
    }
}
