//! Seeded generation of annotated multiscalar programs.
//!
//! A program is first built as a small structured IR ([`GenProgram`]):
//! a chain of tasks (straight-line, Figure-4 self-loops, optional `!st`
//! early exits, one-armed conditional diamonds) over a shared register
//! pool, plus leaf helper functions reached by `jal` and loads/stores
//! through a shared, aliased array. Annotations — create masks, forward
//! bits, explicit `release` lists — are *derived* from the IR by the
//! rules the paper's compiler uses (§3: forward the last update, cover
//! every produced register, release what the forward bits miss), so a
//! rendered program is correct by construction. Adversarial mode then
//! applies a single seeded [`Perturbation`], producing a program whose
//! annotations are wrong in a known way; the static checker or the
//! runtime must notice — silent divergence is the bug the fuzzer hunts.

use ms_isa::Reg;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Data-pool registers tasks compute in (multi-write allowed).
pub const POOL: std::ops::RangeInclusive<u8> = 8..=15;
/// Registers written by helper functions (never forwarded).
pub const HELPER_OUT: [u8; 2] = [2, 3];
/// Loop-limit registers, one per loop task (set once in INIT).
pub const LIMITS: [u8; 4] = [16, 17, 18, 19];
/// Loop-counter registers, one per loop task.
pub const COUNTERS: [u8; 4] = [20, 21, 22, 23];
/// Pointer to the shared data array (set once in INIT, read-only after).
pub const ARR_PTR: u8 = 24;
/// Pointer to the result area (set once in INIT, read-only after).
pub const OUT_PTR: u8 = 25;
/// Bytes of the shared, aliased data array.
pub const ARR_BYTES: u32 = 128;
/// Bytes of the result area the final task stores the pool into.
pub const OUT_BYTES: u32 = 128;

/// Three-operand ALU operations the generator draws from.
pub const ALU3: [&str; 8] = ["addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"];
/// Immediate ALU operations.
pub const ALUI: [&str; 5] = ["addiu", "andi", "ori", "xori", "slti"];
/// Immediate shifts.
pub const SHIFTS: [&str; 3] = ["sll", "srl", "sra"];

/// One generated instruction-level operation inside a task body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BodyOp {
    /// `op rd, ra, rb`.
    Alu {
        /// Mnemonic index into [`ALU3`].
        kind: u8,
        /// Destination register index.
        rd: u8,
        /// First source register index.
        ra: u8,
        /// Second source register index.
        rb: u8,
    },
    /// `op rd, ra, imm`.
    AluImm {
        /// Mnemonic index into [`ALUI`].
        kind: u8,
        /// Destination register index.
        rd: u8,
        /// Source register index.
        ra: u8,
        /// Immediate operand (kept within its field's range).
        imm: i32,
    },
    /// `op rd, ra, sh` with an in-range shift amount.
    Shift {
        /// Mnemonic index into [`SHIFTS`].
        kind: u8,
        /// Destination register index.
        rd: u8,
        /// Source register index.
        ra: u8,
        /// Shift amount, `0..=63`.
        sh: u8,
    },
    /// Load from the shared array: `l* rd, off($24)`.
    Load {
        /// Access size in bytes (1, 2, 4 or 8).
        size: u8,
        /// Destination register index.
        rd: u8,
        /// Byte offset into the array (size-aligned).
        off: u32,
    },
    /// Store to the shared array: `s* rs, off($24)`.
    Store {
        /// Access size in bytes (1, 2, 4 or 8).
        size: u8,
        /// Source register index.
        rs: u8,
        /// Byte offset into the array (size-aligned).
        off: u32,
    },
    /// `jal H<n>` to a leaf helper (clobbers `$31` and the helper's
    /// write-set).
    Call {
        /// Helper index into [`GenProgram::helpers`].
        helper: u8,
    },
    /// A one-armed conditional diamond: `b<cond> $r, $0, skip; <ops>;
    /// skip:`. Arm operations are simple (no calls, no nested ifs).
    If {
        /// Branch mnemonic index into `["beq", "bne"]`.
        cond: u8,
        /// Register the condition tests against `$0`.
        reg: u8,
        /// Operations executed when the branch falls through.
        arm: Vec<BodyOp>,
    },
}

impl BodyOp {
    /// The register this operation writes at top level, if any.
    pub fn def(&self) -> Option<u8> {
        match *self {
            BodyOp::Alu { rd, .. }
            | BodyOp::AluImm { rd, .. }
            | BodyOp::Shift { rd, .. }
            | BodyOp::Load { rd, .. } => Some(rd),
            BodyOp::Store { .. } | BodyOp::Call { .. } | BodyOp::If { .. } => None,
        }
    }
}

/// What kind of control shape a task has.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Body runs once, closing `b!s` to the next task.
    Straight,
    /// Figure-4 self-loop: the counter is incremented and forwarded at
    /// the top, the closing `bne!s counter, limit, self` re-enters.
    Loop {
        /// Counter register index (one of [`COUNTERS`]).
        counter: u8,
        /// Limit register index (one of [`LIMITS`]).
        limit: u8,
    },
}

/// An optional `!st` early exit rendered after the first third of the
/// body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EarlyExit {
    /// Branch mnemonic index into `["beq", "bne", "blez", "bgtz"]`.
    pub cond: u8,
    /// Register tested.
    pub reg: u8,
    /// Absolute index of the task jumped to (always later than the
    /// current task).
    pub to: usize,
}

/// One generated task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenTask {
    /// Control shape.
    pub kind: TaskKind,
    /// Optional `!st` exit to a later task.
    pub early_exit: Option<EarlyExit>,
    /// Body operations, in order.
    pub body: Vec<BodyOp>,
    /// Registers to `release` explicitly just before the closing branch
    /// (a derived subset of the non-forwarded written registers; the
    /// rest rely on end-of-task auto-release).
    pub end_release: Vec<u8>,
}

impl GenTask {
    /// Body index before which the `!st` early exit is rendered.
    pub fn exit_split(&self) -> Option<usize> {
        self.early_exit.as_ref().map(|_| self.body.len().div_ceil(3))
    }
}

/// A leaf helper function (`jal` target ending in `jr $31`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Helper {
    /// Simple operations (ALU only — helpers never touch memory or
    /// control). Destinations are restricted to [`HELPER_OUT`].
    pub ops: Vec<BodyOp>,
}

/// A seeded single perturbation applied in adversarial mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Perturbation {
    /// Add a forward bit to an *earlier* write of a multiply-written
    /// register — the classic stale-forward bug (a value is sent once
    /// per task, so the later write never reaches successors).
    StaleForward {
        /// Task index.
        task: usize,
        /// Register whose early write gets the bogus bit.
        reg: u8,
    },
    /// Insert `release $r` right after an early write of a register
    /// that is written again later — stale by the same mechanism.
    EarlyRelease {
        /// Task index.
        task: usize,
        /// Register released too early.
        reg: u8,
    },
    /// Remove a forwarded register from its task's create mask.
    DropCreate {
        /// Task index.
        task: usize,
        /// Register removed from the mask.
        reg: u8,
    },
    /// Remove the stop bit from a task's closing branch, so control
    /// falls into the next task unmarked.
    DropStop {
        /// Task index.
        task: usize,
    },
    /// Remove one entry from a task's descriptor target list.
    DropTarget {
        /// Task index.
        task: usize,
        /// Which target (by position) to drop.
        which: usize,
    },
    /// Remove the explicit end-of-task releases — *harmless* by design
    /// (auto-release covers them); exercises the runtime path.
    DropRelease {
        /// Task index.
        task: usize,
    },
    /// Add a never-written register to a create mask — harmless
    /// (auto-release passes the inbound value through).
    InflateCreate {
        /// Task index.
        task: usize,
        /// Register added to the mask.
        reg: u8,
    },
    /// Remove the forward bit from a last write — harmless but slower
    /// (successors wait for the end-of-task auto-release).
    DropForward {
        /// Task index.
        task: usize,
        /// Register whose forward bit is removed.
        reg: u8,
    },
}

impl Perturbation {
    /// Short machine-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Perturbation::StaleForward { .. } => "stale-forward",
            Perturbation::EarlyRelease { .. } => "early-release",
            Perturbation::DropCreate { .. } => "drop-create",
            Perturbation::DropStop { .. } => "drop-stop",
            Perturbation::DropTarget { .. } => "drop-target",
            Perturbation::DropRelease { .. } => "drop-release",
            Perturbation::InflateCreate { .. } => "inflate-create",
            Perturbation::DropForward { .. } => "drop-forward",
        }
    }

    /// The task this perturbation applies to.
    pub fn task(&self) -> usize {
        match *self {
            Perturbation::StaleForward { task, .. }
            | Perturbation::EarlyRelease { task, .. }
            | Perturbation::DropCreate { task, .. }
            | Perturbation::DropStop { task }
            | Perturbation::DropTarget { task, .. }
            | Perturbation::DropRelease { task }
            | Perturbation::InflateCreate { task, .. }
            | Perturbation::DropForward { task, .. } => task,
        }
    }
}

/// A complete generated program in IR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenProgram {
    /// Seed the program was generated from (recorded for repros).
    pub seed: u64,
    /// Tasks in program order. Task 0 is always the INIT task; the last
    /// task is always the FIN store-out task.
    pub tasks: Vec<GenTask>,
    /// Leaf helpers callable from any task.
    pub helpers: Vec<Helper>,
    /// Initial contents of the shared array (rendered as `.word`s).
    pub arr_init: Vec<u32>,
    /// The single perturbation applied in adversarial mode.
    pub perturbation: Option<Perturbation>,
}

fn reg_name(i: u8) -> String {
    Reg::from_index(i as usize).expect("generator register index").to_string()
}

/// Per-task annotation facts derived from the IR.
#[derive(Clone, Debug, Default)]
pub struct Derived {
    /// All registers the task may write (create-mask contents), sorted.
    pub create: Vec<u8>,
    /// `(register, top-level body index)` of each forward bit. A loop
    /// task's counter is forwarded on the rendered increment, marked
    /// with index [`COUNTER_FWD`].
    pub forwards: Vec<(u8, usize)>,
}

/// Pseudo body index marking the loop counter's rendered increment.
pub const COUNTER_FWD: usize = usize::MAX;

/// Computes the create mask and forward-bit placement for one task.
///
/// Forward rule: a register is forwarded iff its *last* write in the
/// body is a top-level (unconditional, non-call) write; the bit goes on
/// that write. Conditionally-written registers, helper clobbers and
/// `$31` are covered by release/auto-release instead. With the
/// `fuzz-teeth` feature the last-write analysis is disabled and the bit
/// lands on the *first* top-level write — the seeded bug the corpus
/// must catch.
pub fn derive(task: &GenTask, helpers: &[Helper]) -> Derived {
    // (reg, top-level position or None for conditional/call writes),
    // in body order.
    let mut writes: Vec<(u8, Option<usize>)> = Vec::new();
    if let TaskKind::Loop { counter, .. } = task.kind {
        writes.push((counter, Some(COUNTER_FWD)));
    }
    for (i, op) in task.body.iter().enumerate() {
        match op {
            BodyOp::If { arm, .. } => {
                for a in arm {
                    if let Some(r) = a.def() {
                        writes.push((r, None));
                    }
                }
            }
            BodyOp::Call { helper } => {
                writes.push((31, None));
                for h in &helpers[*helper as usize].ops {
                    if let Some(r) = h.def() {
                        writes.push((r, None));
                    }
                }
            }
            _ => {
                if let Some(r) = op.def() {
                    writes.push((r, Some(i)));
                }
            }
        }
    }

    let mut create: Vec<u8> = writes.iter().map(|&(r, _)| r).collect();
    create.sort_unstable();
    create.dedup();

    let mut forwards: Vec<(u8, usize)> = Vec::new();
    for &r in &create {
        let positions: Vec<Option<usize>> =
            writes.iter().filter(|&&(wr, _)| wr == r).map(|&(_, p)| p).collect();
        #[cfg(not(feature = "fuzz-teeth"))]
        let candidate = positions.last().copied().flatten();
        #[cfg(feature = "fuzz-teeth")]
        let candidate = positions.first().copied().flatten();
        if let Some(p) = candidate {
            forwards.push((r, p));
        }
    }
    Derived { create, forwards }
}

/// Registers with two top-level writes joined by a *straight* path (no
/// conditional branch in between), with the earlier write's body index.
/// These are the targets where a bogus early communication is provably
/// stale — the static checker must flag it as an error, not merely a
/// may-happen warning.
pub fn multi_written(task: &GenTask) -> Vec<(u8, usize)> {
    let split = task.exit_split();
    let mut last_write: Vec<(u8, usize)> = Vec::new();
    let mut out: Vec<(u8, usize)> = Vec::new();
    for (j, op) in task.body.iter().enumerate() {
        let Some(r) = op.def() else { continue };
        if let Some(&(_, i)) = last_write.iter().find(|&&(lr, _)| lr == r) {
            let no_if = task.body[i + 1..j].iter().all(|o| !matches!(o, BodyOp::If { .. }));
            let no_exit = split.is_none_or(|s| !(i < s && s <= j));
            if no_if && no_exit && !out.iter().any(|&(or, _)| or == r) {
                out.push((r, i));
            }
        }
        match last_write.iter_mut().find(|e| e.0 == r) {
            Some(e) => e.1 = j,
            None => last_write.push((r, j)),
        }
    }
    out
}

/// Generates one program from `seed`. With `adversarial`, one seeded
/// perturbation is recorded in the result (applied at render time).
pub fn generate(seed: u64, adversarial: bool) -> GenProgram {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_mid = rng.gen_range(2usize..=5); // tasks between INIT and FIN
    let n_helpers = rng.gen_range(1usize..=2);

    let helpers: Vec<Helper> = (0..n_helpers)
        .map(|_| {
            let n = rng.gen_range(1usize..=3);
            let ops = (0..n)
                .map(|i| {
                    let rd = HELPER_OUT[i % HELPER_OUT.len()];
                    let ra = if i == 0 { rng.gen_range(8u8..=15) } else { HELPER_OUT[0] };
                    BodyOp::Alu {
                        kind: rng.gen_range(0..ALU3.len() as u8),
                        rd,
                        ra,
                        rb: rng.gen_range(8u8..=15),
                    }
                })
                .collect();
            Helper { ops }
        })
        .collect();

    let mut loops_used = 0usize;
    let mut tasks: Vec<GenTask> = Vec::new();
    // Task 0: INIT (rendered specially; empty body here).
    tasks.push(GenTask {
        kind: TaskKind::Straight,
        early_exit: None,
        body: Vec::new(),
        end_release: Vec::new(),
    });

    for t in 0..n_mid {
        let abs = t + 1;
        let kind = if loops_used < COUNTERS.len() && rng.gen_bool(0.4) {
            let k = TaskKind::Loop { counter: COUNTERS[loops_used], limit: LIMITS[loops_used] };
            loops_used += 1;
            k
        } else {
            TaskKind::Straight
        };

        let n_ops = rng.gen_range(4usize..=10);
        let mut called = false;
        let body: Vec<BodyOp> =
            (0..n_ops).map(|_| random_op(&mut rng, &helpers, &mut called, true)).collect();

        // Optional early exit to a strictly later task (or FIN).
        let early_exit = if rng.gen_bool(0.3) {
            let to = rng.gen_range(abs + 1..=n_mid + 1);
            Some(EarlyExit { cond: rng.gen_range(0..4), reg: rng.gen_range(8u8..=15), to })
        } else {
            None
        };

        let mut task = GenTask { kind, early_exit, body, end_release: Vec::new() };
        // Explicitly release a random subset of the auto-released regs.
        let d = derive(&task, &helpers);
        let forwarded: Vec<u8> = d.forwards.iter().map(|&(r, _)| r).collect();
        task.end_release = d
            .create
            .iter()
            .copied()
            .filter(|r| !forwarded.contains(r) && rng.gen_bool(0.5))
            .collect();
        tasks.push(task);
    }

    // FIN task: stores the pool and counters to `out` (rendered
    // specially; empty body here).
    tasks.push(GenTask {
        kind: TaskKind::Straight,
        early_exit: None,
        body: Vec::new(),
        end_release: Vec::new(),
    });

    let arr_init: Vec<u32> = (0..ARR_BYTES / 4).map(|_| rng.gen::<u32>()).collect();

    let mut prog = GenProgram { seed, tasks, helpers, arr_init, perturbation: None };
    if adversarial {
        prog.perturbation = pick_perturbation(&mut rng, &prog);
    }
    prog
}

fn random_op(
    rng: &mut SmallRng,
    helpers: &[Helper],
    called: &mut bool,
    allow_compound: bool,
) -> BodyOp {
    fn pool(rng: &mut SmallRng) -> u8 {
        rng.gen_range(8u8..=15)
    }
    loop {
        match rng.gen_range(0u32..100) {
            0..=29 => {
                // After a call, results in $2/$3 may feed the pool.
                let use_ret = *called && rng.gen_bool(0.4);
                let ra = if use_ret { HELPER_OUT[rng.gen_range(0..2)] } else { pool(rng) };
                return BodyOp::Alu {
                    kind: rng.gen_range(0..ALU3.len() as u8),
                    rd: pool(rng),
                    ra,
                    rb: pool(rng),
                };
            }
            30..=49 => {
                let kind = rng.gen_range(0..ALUI.len() as u8);
                let imm = rng.gen_range(-2048i32..2048);
                // andi/ori/xori take unsigned immediates.
                let imm = if (1..=3).contains(&kind) { imm & 0xfff } else { imm };
                return BodyOp::AluImm { kind, rd: pool(rng), ra: pool(rng), imm };
            }
            50..=59 => {
                return BodyOp::Shift {
                    kind: rng.gen_range(0..SHIFTS.len() as u8),
                    rd: pool(rng),
                    ra: pool(rng),
                    sh: rng.gen_range(0..64),
                };
            }
            60..=74 => {
                let size = 1u8 << rng.gen_range(0u32..4);
                let off = rng.gen_range(0..ARR_BYTES / size as u32) * size as u32;
                return BodyOp::Load { size, rd: pool(rng), off };
            }
            75..=89 => {
                let size = 1u8 << rng.gen_range(0u32..4);
                let off = rng.gen_range(0..ARR_BYTES / size as u32) * size as u32;
                return BodyOp::Store { size, rs: pool(rng), off };
            }
            90..=94 => {
                if helpers.is_empty() {
                    continue;
                }
                *called = true;
                return BodyOp::Call { helper: rng.gen_range(0..helpers.len() as u8) };
            }
            _ => {
                if !allow_compound {
                    continue;
                }
                let n = rng.gen_range(1usize..=3);
                let mut arm_called = false;
                let arm = (0..n).map(|_| random_op(rng, &[], &mut arm_called, false)).collect();
                return BodyOp::If { cond: rng.gen_range(0..2), reg: pool(rng), arm };
            }
        }
    }
}

/// The number of descriptor targets a rendered task has.
fn target_count(prog: &GenProgram, t: usize) -> usize {
    let task = &prog.tasks[t];
    let mut n = match task.kind {
        TaskKind::Loop { .. } => 2,
        TaskKind::Straight => 1,
    };
    if let Some(e) = &task.early_exit {
        // The early target may coincide with the fall-through target.
        if e.to != t + 1 {
            n += 1;
        }
    }
    n
}

/// Picks one applicable perturbation for the program, if any fits.
fn pick_perturbation(rng: &mut SmallRng, prog: &GenProgram) -> Option<Perturbation> {
    // The candidate list is built deterministically, then one is chosen.
    let mut cands: Vec<Perturbation> = Vec::new();
    for t in 1..prog.tasks.len() - 1 {
        let task = &prog.tasks[t];
        let d = derive(task, &prog.helpers);
        for (r, _) in multi_written(task) {
            cands.push(Perturbation::StaleForward { task: t, reg: r });
            cands.push(Perturbation::EarlyRelease { task: t, reg: r });
        }
        for &(r, p) in &d.forwards {
            cands.push(Perturbation::DropCreate { task: t, reg: r });
            if p != COUNTER_FWD {
                cands.push(Perturbation::DropForward { task: t, reg: r });
            }
        }
        cands.push(Perturbation::DropStop { task: t });
        let n_targets = target_count(prog, t);
        if n_targets > 1 {
            cands.push(Perturbation::DropTarget { task: t, which: rng.gen_range(0..n_targets) });
        }
        if !task.end_release.is_empty() {
            cands.push(Perturbation::DropRelease { task: t });
        }
        // $26/$27 are never touched by the generator.
        cands.push(Perturbation::InflateCreate { task: t, reg: 26 + rng.gen_range(0u8..2) });
    }
    if cands.is_empty() {
        None
    } else {
        let i = rng.gen_range(0..cands.len());
        Some(cands.swap_remove(i))
    }
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

struct TaskRender {
    create: Vec<u8>,
    targets: Vec<String>,
    lines: Vec<String>,
    /// Maps a top-level body index to its position in `lines` (simple
    /// ops only — `If` blocks and pseudo-ops are never perturbed).
    body_line: Vec<(usize, usize)>,
}

/// Renders the IR to a standalone assembly source.
///
/// The output is deliberately self-contained: it assembles in both
/// scalar and multiscalar modes, and a shrunk repro written to disk is
/// runnable with `msfuzz --repro FILE` with no other context.
pub fn render(prog: &GenProgram) -> String {
    let n = prog.tasks.len();
    let mut tasks: Vec<TaskRender> = Vec::with_capacity(n);

    for (t, _) in prog.tasks.iter().enumerate() {
        if t == 0 {
            tasks.push(render_init(prog));
        } else if t == n - 1 {
            tasks.push(render_fin(prog));
        } else {
            tasks.push(render_mid(prog, t));
        }
    }

    apply_perturbation(prog, &mut tasks);

    let mut s = String::new();
    let _ = writeln!(
        s,
        "; generated by msfuzz --seed {}{}",
        prog.seed,
        match &prog.perturbation {
            Some(p) => format!(" (adversarial: {})", p.name()),
            None => String::new(),
        }
    );
    s.push_str(".data\n");
    let words: Vec<String> = prog.arr_init.iter().map(|w| w.to_string()).collect();
    let _ = writeln!(s, "arr: .word {}", words.join(", "));
    let _ = writeln!(s, "out: .space {OUT_BYTES}");
    s.push_str("\n.text\nmain:\n");
    for (t, tr) in tasks.iter().enumerate() {
        let create: Vec<String> = tr.create.iter().map(|&r| reg_name(r)).collect();
        let _ = writeln!(s, ".task targets={} create={}", tr.targets.join(","), create.join(","));
        let _ = writeln!(s, "T{t}:");
        for l in &tr.lines {
            let _ = writeln!(s, "    {l}");
        }
    }
    for (h, helper) in prog.helpers.iter().enumerate() {
        let _ = writeln!(s, "H{h}:");
        for op in &helper.ops {
            let _ = writeln!(s, "    {}", op_line(op, ""));
        }
        s.push_str("    jr $31\n");
    }
    s
}

fn op_line(op: &BodyOp, fwd: &str) -> String {
    match *op {
        BodyOp::Alu { kind, rd, ra, rb } => {
            format!(
                "{}{} {}, {}, {}",
                ALU3[kind as usize],
                fwd,
                reg_name(rd),
                reg_name(ra),
                reg_name(rb)
            )
        }
        BodyOp::AluImm { kind, rd, ra, imm } => {
            format!("{}{} {}, {}, {}", ALUI[kind as usize], fwd, reg_name(rd), reg_name(ra), imm)
        }
        BodyOp::Shift { kind, rd, ra, sh } => {
            format!("{}{} {}, {}, {}", SHIFTS[kind as usize], fwd, reg_name(rd), reg_name(ra), sh)
        }
        BodyOp::Load { size, rd, off } => {
            let m = match size {
                1 => "lbu",
                2 => "lhu",
                4 => "lw",
                _ => "ld",
            };
            format!("{}{} {}, {}({})", m, fwd, reg_name(rd), off, reg_name(ARR_PTR))
        }
        BodyOp::Store { size, rs, off } => {
            let m = match size {
                1 => "sb",
                2 => "sh",
                4 => "sw",
                _ => "sd",
            };
            format!("{} {}, {}({})", m, reg_name(rs), off, reg_name(ARR_PTR))
        }
        BodyOp::Call { helper } => format!("jal H{helper}"),
        BodyOp::If { .. } => unreachable!("If is rendered by render_mid"),
    }
}

fn render_init(prog: &GenProgram) -> TaskRender {
    let mut lines = Vec::new();
    let mut create = vec![ARR_PTR, OUT_PTR];
    // A dedicated stream keeps the initial values stable under shrinking.
    let mut rng = SmallRng::seed_from_u64(prog.seed ^ 0x1217_5eed);
    lines.push(format!("la!f {}, arr", reg_name(ARR_PTR)));
    lines.push(format!("la!f {}, out", reg_name(OUT_PTR)));
    for r in POOL {
        create.push(r);
        lines.push(format!("li!f {}, {}", reg_name(r), rng.gen_range(-2048i32..2048)));
    }
    for task in &prog.tasks {
        if let TaskKind::Loop { counter, limit } = task.kind {
            create.push(counter);
            create.push(limit);
            lines.push(format!("li!f {}, 0", reg_name(counter)));
            lines.push(format!("li!f {}, {}", reg_name(limit), rng.gen_range(1i32..=5)));
        }
    }
    lines.push("b!s T1".to_string());
    create.sort_unstable();
    TaskRender { create, targets: vec!["T1".to_string()], lines, body_line: Vec::new() }
}

fn render_fin(prog: &GenProgram) -> TaskRender {
    let mut lines = Vec::new();
    let mut off = 0u32;
    for r in POOL {
        lines.push(format!("sd {}, {}({})", reg_name(r), off, reg_name(OUT_PTR)));
        off += 8;
    }
    for task in &prog.tasks {
        if let TaskKind::Loop { counter, .. } = task.kind {
            lines.push(format!("sd {}, {}({})", reg_name(counter), off, reg_name(OUT_PTR)));
            off += 8;
        }
    }
    lines.push("halt".to_string());
    TaskRender {
        create: Vec::new(),
        targets: vec!["halt".to_string()],
        lines,
        body_line: Vec::new(),
    }
}

fn render_mid(prog: &GenProgram, t: usize) -> TaskRender {
    let task = &prog.tasks[t];
    let d = derive(task, &prog.helpers);
    let fwd_at = |i: usize| d.forwards.iter().any(|&(_, p)| p == i);

    let mut lines = Vec::new();
    let mut body_line = Vec::new();
    let mut targets = Vec::new();

    if let TaskKind::Loop { counter, .. } = task.kind {
        // Counter increment first, forwarded (Figure 4).
        lines.push(format!("addiu!f {0}, {0}, 1", reg_name(counter)));
    }

    let split = task.exit_split();
    for (i, op) in task.body.iter().enumerate() {
        if Some(i) == split {
            let e = task.early_exit.as_ref().expect("split implies early exit");
            let cond = ["beq", "bne", "blez", "bgtz"][e.cond as usize];
            let line = if e.cond < 2 {
                format!("{cond}!st {}, $0, T{}", reg_name(e.reg), e.to)
            } else {
                format!("{cond}!st {}, T{}", reg_name(e.reg), e.to)
            };
            lines.push(line);
        }
        match op {
            BodyOp::If { cond, reg, arm } => {
                let b = ["beq", "bne"][*cond as usize];
                lines.push(format!("{b} {}, $0, S{t}_{i}", reg_name(*reg)));
                for a in arm {
                    lines.push(op_line(a, ""));
                }
                lines.push(format!("S{t}_{i}:"));
            }
            _ => {
                let fwd = if fwd_at(i) { "!f" } else { "" };
                lines.push(op_line(op, fwd));
                body_line.push((i, lines.len() - 1));
            }
        }
    }

    if !task.end_release.is_empty() {
        let regs: Vec<String> = task.end_release.iter().map(|&r| reg_name(r)).collect();
        lines.push(format!("release {}", regs.join(", ")));
    }

    match task.kind {
        TaskKind::Loop { counter, limit } => {
            lines.push(format!("bne!s {}, {}, T{t}", reg_name(counter), reg_name(limit)));
            targets.push(format!("T{t}"));
            targets.push(format!("T{}", t + 1));
        }
        TaskKind::Straight => {
            lines.push(format!("b!s T{}", t + 1));
            targets.push(format!("T{}", t + 1));
        }
    }
    if let Some(e) = &task.early_exit {
        let lbl = format!("T{}", e.to);
        if !targets.contains(&lbl) {
            targets.push(lbl);
        }
    }

    TaskRender { create: d.create, targets, lines, body_line }
}

/// Applies the recorded perturbation to the rendered task list.
fn apply_perturbation(prog: &GenProgram, tasks: &mut [TaskRender]) {
    let Some(p) = &prog.perturbation else { return };
    let line_of = |tr: &TaskRender, body_idx: usize| {
        tr.body_line.iter().find(|&&(b, _)| b == body_idx).map(|&(_, l)| l)
    };
    match *p {
        Perturbation::StaleForward { task, reg } => {
            let Some((_, early)) =
                multi_written(&prog.tasks[task]).into_iter().find(|&(r, _)| r == reg)
            else {
                return;
            };
            if let Some(l) = line_of(&tasks[task], early) {
                let line = &mut tasks[task].lines[l];
                if let Some(sp) = line.find(' ') {
                    line.insert_str(sp, "!f");
                }
            }
        }
        Perturbation::EarlyRelease { task, reg } => {
            let Some((_, early)) =
                multi_written(&prog.tasks[task]).into_iter().find(|&(r, _)| r == reg)
            else {
                return;
            };
            if let Some(l) = line_of(&tasks[task], early) {
                tasks[task].lines.insert(l + 1, format!("release {}", reg_name(reg)));
            }
        }
        Perturbation::DropCreate { task, reg } => {
            tasks[task].create.retain(|&r| r != reg);
        }
        Perturbation::DropStop { task } => {
            if let Some(last) = tasks[task].lines.last_mut() {
                *last = last.replacen("!s", "", 1);
            }
        }
        Perturbation::DropTarget { task, which } => {
            if which < tasks[task].targets.len() && tasks[task].targets.len() > 1 {
                tasks[task].targets.remove(which);
            }
        }
        Perturbation::DropRelease { task } => {
            tasks[task].lines.retain(|l| !l.starts_with("release "));
        }
        Perturbation::InflateCreate { task, reg } => {
            if !tasks[task].create.contains(&reg) {
                tasks[task].create.push(reg);
                tasks[task].create.sort_unstable();
            }
        }
        Perturbation::DropForward { task, reg } => {
            let d = derive(&prog.tasks[task], &prog.helpers);
            let Some(&(_, pos)) = d.forwards.iter().find(|&&(r, _)| r == reg) else { return };
            if pos == COUNTER_FWD {
                return;
            }
            if let Some(l) = line_of(&tasks[task], pos) {
                let line = &mut tasks[task].lines[l];
                *line = line.replacen("!f", "", 1);
            }
        }
    }
}
