//! Delta-debugging shrinker for failing generated programs.
//!
//! Minimization works on the [`GenProgram`] IR, not on assembly text,
//! so every candidate re-renders to a well-formed program with
//! re-derived annotations. The strategy is greedy and deterministic
//! (no randomness): drop whole tasks, then drop body operations, then
//! simplify what remains — keeping an edit only if the shrunk program
//! still fails validation the same way (any failing verdict counts).

use crate::diff::{validate_source, ValidateOpts};
use crate::gen::{render, BodyOp, GenProgram, Perturbation};

/// Bookkeeping from one minimization run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShrinkStats {
    /// Candidate programs validated.
    pub attempts: usize,
    /// Candidates accepted (edits kept).
    pub accepted: usize,
}

/// Hard cap on candidate validations per minimization, so a pathological
/// case cannot stall a corpus run.
const MAX_ATTEMPTS: usize = 400;

/// Shrinks a failing program to a (locally) minimal one that still
/// fails. If `start` does not actually fail, it is returned unchanged.
pub fn minimize(
    start: &GenProgram,
    adversarial: bool,
    opts: &ValidateOpts,
) -> (GenProgram, ShrinkStats) {
    let mut stats = ShrinkStats::default();
    let first = validate_source(&render(start), adversarial, opts);
    if first.pass {
        return (start.clone(), stats);
    }
    // An edit must preserve the failure *kind*: dropping the write that
    // feeds a diverging `release` would otherwise morph an interesting
    // runtime divergence into a boring static reject.
    let verdict = first.verdict;
    let mut fails = move |p: &GenProgram, stats: &mut ShrinkStats| -> bool {
        if stats.attempts >= MAX_ATTEMPTS {
            return false;
        }
        stats.attempts += 1;
        let out = validate_source(&render(p), adversarial, opts);
        !out.pass && out.verdict == verdict
    };

    let mut best = start.clone();
    loop {
        let before = stats.accepted;
        drop_tasks(&mut best, &mut fails, &mut stats);
        drop_ops(&mut best, &mut fails, &mut stats);
        simplify(&mut best, &mut fails, &mut stats);
        if stats.accepted == before || stats.attempts >= MAX_ATTEMPTS {
            return (best, stats);
        }
    }
}

/// Re-targets a perturbation after mid task `k` was removed. `None`
/// means the perturbation pointed at the removed task, so the candidate
/// is not viable.
fn rewire_perturbation(p: &Perturbation, k: usize) -> Option<Perturbation> {
    let t = p.task();
    if t == k {
        return None;
    }
    if t < k {
        return Some(p.clone());
    }
    let mut q = p.clone();
    match &mut q {
        Perturbation::StaleForward { task, .. }
        | Perturbation::EarlyRelease { task, .. }
        | Perturbation::DropCreate { task, .. }
        | Perturbation::DropStop { task }
        | Perturbation::DropTarget { task, .. }
        | Perturbation::DropRelease { task }
        | Perturbation::InflateCreate { task, .. }
        | Perturbation::DropForward { task, .. } => *task -= 1,
    }
    Some(q)
}

fn drop_tasks(
    best: &mut GenProgram,
    fails: &mut impl FnMut(&GenProgram, &mut ShrinkStats) -> bool,
    stats: &mut ShrinkStats,
) {
    let mut k = 1;
    // INIT (0) and FIN (last) are structural; only mid tasks drop.
    while k < best.tasks.len().saturating_sub(1) {
        let mut cand = best.clone();
        cand.tasks.remove(k);
        for task in &mut cand.tasks {
            if let Some(e) = &mut task.early_exit {
                if e.to > k {
                    e.to -= 1;
                }
            }
        }
        if let Some(p) = &best.perturbation {
            match rewire_perturbation(p, k) {
                Some(q) => cand.perturbation = Some(q),
                None => {
                    k += 1;
                    continue;
                }
            }
        }
        if fails(&cand, stats) {
            stats.accepted += 1;
            *best = cand;
        } else {
            k += 1;
        }
    }
}

fn drop_ops(
    best: &mut GenProgram,
    fails: &mut impl FnMut(&GenProgram, &mut ShrinkStats) -> bool,
    stats: &mut ShrinkStats,
) {
    for t in 1..best.tasks.len().saturating_sub(1) {
        let mut i = 0;
        while i < best.tasks[t].body.len() {
            let mut cand = best.clone();
            cand.tasks[t].body.remove(i);
            if fails(&cand, stats) {
                stats.accepted += 1;
                *best = cand;
            } else {
                i += 1;
            }
        }
    }
}

fn simplify(
    best: &mut GenProgram,
    fails: &mut impl FnMut(&GenProgram, &mut ShrinkStats) -> bool,
    stats: &mut ShrinkStats,
) {
    let mut try_edit = |best: &mut GenProgram, stats: &mut ShrinkStats, cand: GenProgram| {
        if cand != *best && fails(&cand, stats) {
            stats.accepted += 1;
            *best = cand;
            true
        } else {
            false
        }
    };

    for t in 1..best.tasks.len().saturating_sub(1) {
        if best.tasks[t].early_exit.is_some() {
            let mut cand = best.clone();
            cand.tasks[t].early_exit = None;
            try_edit(best, stats, cand);
        }
        if !best.tasks[t].end_release.is_empty() {
            let mut cand = best.clone();
            cand.tasks[t].end_release.clear();
            try_edit(best, stats, cand);
        }
        for i in 0..best.tasks[t].body.len() {
            let simpler = match &best.tasks[t].body[i] {
                BodyOp::AluImm { kind, rd, ra, imm } if *imm != 0 => {
                    Some(BodyOp::AluImm { kind: *kind, rd: *rd, ra: *ra, imm: 0 })
                }
                BodyOp::Shift { kind, rd, ra, sh } if *sh > 1 => {
                    Some(BodyOp::Shift { kind: *kind, rd: *rd, ra: *ra, sh: 1 })
                }
                BodyOp::If { cond, reg, arm } if arm.len() > 1 => {
                    Some(BodyOp::If { cond: *cond, reg: *reg, arm: arm[..1].to_vec() })
                }
                _ => None,
            };
            if let Some(op) = simpler {
                let mut cand = best.clone();
                cand.tasks[t].body[i] = op;
                try_edit(best, stats, cand);
            }
        }
    }

    // Drop helpers nothing calls any more (renumbering the rest).
    let mut h = 0;
    while h < best.helpers.len() {
        let called = best
            .tasks
            .iter()
            .flat_map(|t| &t.body)
            .any(|op| matches!(op, BodyOp::Call { helper } if *helper as usize == h));
        if called {
            h += 1;
            continue;
        }
        let mut cand = best.clone();
        cand.helpers.remove(h);
        for task in &mut cand.tasks {
            for op in &mut task.body {
                if let BodyOp::Call { helper } = op {
                    if *helper as usize > h {
                        *helper -= 1;
                    }
                }
            }
        }
        if !try_edit(best, stats, cand) {
            h += 1;
        }
    }
}
