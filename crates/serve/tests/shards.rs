//! The process-shard executor end to end: real `msserve --worker` child
//! processes, real kills, and byte-identical artifacts no matter what
//! the workers do.

use ms_serve::worker::FAULT_ENV;
use ms_serve::{ProcessShardExecutor, ShardOptions};
use ms_sweep::{artifacts, run_jobs_with, Executor, InProcessExecutor, Job, JobKind, SweepOptions};
use ms_workloads::Scale;
use multiscalar::SimConfig;
use std::time::{Duration, Instant};

/// The worker command every test uses: this crate's own `msserve`
/// binary in its hidden worker mode.
fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_msserve").to_string(), "--worker".to_string()]
}

fn opts() -> ShardOptions {
    ShardOptions { worker_cmd: Some(worker_cmd()), ..ShardOptions::default() }
}

/// A small but non-trivial job list: two workloads, both engine kinds,
/// and a non-default config so `stable_key` round-tripping is exercised.
fn jobs() -> Vec<Job> {
    let mut out = Vec::new();
    for workload in ["wc", "cmp"] {
        out.push(Job {
            workload: workload.into(),
            scale: Scale::Test,
            kind: JobKind::Scalar,
            cfg: SimConfig::scalar(),
            partition: None,
        });
        out.push(Job {
            workload: workload.into(),
            scale: Scale::Test,
            kind: JobKind::Multiscalar,
            cfg: SimConfig::multiscalar(4).issue(2).out_of_order(true),
            partition: None,
        });
    }
    out
}

/// The undisturbed single-process truth for [`jobs`].
fn baseline_json() -> String {
    let report = run_jobs_with(jobs(), &SweepOptions::default(), &InProcessExecutor::new());
    artifacts::results_json(&report)
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn shard_artifacts_are_byte_identical_to_in_process() {
    let exec = ProcessShardExecutor::start(opts());
    let report = run_jobs_with(jobs(), &SweepOptions::default(), &exec);
    let shard_json = artifacts::results_json(&report);
    assert_eq!(shard_json, baseline_json(), "process shards change no artifact byte");
    let stats = exec.stats();
    assert_eq!(stats.completed, jobs().len() as u64, "{stats:?}");
    assert_eq!(stats.deaths, 0, "{stats:?}");
    exec.shutdown();
}

#[test]
fn killed_panicked_and_garbage_workers_recover_to_identical_bytes() {
    for fault in ["kill@1", "panic@0", "garbage@0"] {
        let exec = ProcessShardExecutor::start(ShardOptions {
            worker_env: vec![(0, FAULT_ENV.into(), fault.into())],
            ..opts()
        });
        let report = run_jobs_with(jobs(), &SweepOptions::default(), &exec);
        let shard_json = artifacts::results_json(&report);
        assert_eq!(shard_json, baseline_json(), "bytes diverged under fault `{fault}`");
        let stats = exec.stats();
        assert!(stats.restarts >= 1, "fault `{fault}` caused no restart: {stats:?}");
        assert!(stats.deaths >= 1, "fault `{fault}` caused no death: {stats:?}");
        assert!(
            stats.requeued + stats.requeue_deduped >= 1,
            "fault `{fault}` orphaned nothing: {stats:?}"
        );
        if fault.starts_with("garbage") {
            assert!(stats.protocol_breaches >= 1, "{stats:?}");
        }
        assert_eq!(stats.poisoned, 0, "fault `{fault}` must not poison: {stats:?}");
        exec.shutdown();
    }
}

#[test]
fn stalled_workers_hit_the_job_deadline_and_recover() {
    // The stall keeps heartbeats flowing, so only the per-job deadline
    // can catch it — which is exactly what this pins down.
    let exec = ProcessShardExecutor::start(ShardOptions {
        job_deadline_ms: 300,
        worker_env: vec![(0, FAULT_ENV.into(), "stall@0:60000".into())],
        ..opts()
    });
    let report = run_jobs_with(jobs(), &SweepOptions::default(), &exec);
    assert_eq!(artifacts::results_json(&report), baseline_json());
    let stats = exec.stats();
    assert!(stats.deadline_kills >= 1, "{stats:?}");
    assert!(stats.restarts >= 1, "{stats:?}");
    assert_eq!(stats.hang_kills, 0, "heartbeats flowed; only the deadline fired: {stats:?}");
    exec.shutdown();
}

#[test]
fn repeated_deaths_on_one_job_poison_it_with_a_structured_report() {
    // A fake worker that comes up healthy, then dies on every job it is
    // ever given: the job identity must be quarantined as poison, not
    // retried forever and not allowed to wedge the caller.
    let exec = ProcessShardExecutor::start(ShardOptions {
        workers: 1,
        worker_cmd: Some(vec![
            "/bin/sh".into(),
            "-c".into(),
            r#"echo '{"type":"ready","pid":1,"gen":0}'; read line; exit 9"#.into(),
        ]),
        poison_threshold: 2,
        max_restarts: 32,
        ..ShardOptions::default()
    });
    let job = &jobs()[0];
    let err = exec
        .run(job, &ms_workloads::by_name(&job.workload, job.scale).unwrap(), 0)
        .expect_err("a poisoned job must settle with an error");
    assert!(err.contains("poison job"), "{err}");
    assert!(err.contains(&job.id()), "{err}");
    let poison = exec.poison_jobs();
    assert_eq!(poison.len(), 1, "{poison:?}");
    assert_eq!(poison[0].job, job.id());
    assert_eq!(poison[0].deaths, 2);
    assert!(poison[0].identity.contains("ms-sweep v1|"), "{}", poison[0].identity);
    let stats = exec.stats();
    assert_eq!(stats.poisoned, 1, "{stats:?}");
    assert!(stats.requeued >= 1, "the first death re-queued once: {stats:?}");
    assert!(stats.restarts >= 1, "{stats:?}");
    exec.shutdown();
}

#[test]
fn unspawnable_workers_exhaust_the_budget_and_fail_fast() {
    let exec = ProcessShardExecutor::start(ShardOptions {
        workers: 1,
        worker_cmd: Some(vec!["/nonexistent/ms-worker-binary".into()]),
        max_restarts: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 5,
        ..ShardOptions::default()
    });
    let job = &jobs()[0];
    let err = exec
        .run(job, &ms_workloads::by_name(&job.workload, job.scale).unwrap(), 0)
        .expect_err("an unspawnable pool must fail, not hang");
    assert!(err.contains("gave up"), "{err}");
    assert!(exec.stats().deaths >= 3, "{:?}", exec.stats());
    exec.shutdown();
}

#[test]
fn duplicated_dispatches_are_discarded_on_arrival() {
    let exec =
        ProcessShardExecutor::start(ShardOptions { workers: 2, duplicate_nth: Some(0), ..opts() });
    let job = &jobs()[1]; // a multiscalar point, non-trivial compute
    let w = ms_workloads::by_name(&job.workload, job.scale).unwrap();
    let stats = exec.run(job, &w, 0).expect("duplicated job still settles ok");
    assert!(stats.cycles > 0);
    // The duplicate ticket settles after the first result; wait for its
    // arrival to be recorded as discarded, never double-settled.
    wait_for(|| exec.stats().duplicates_discarded == 1, "duplicate discard");
    let s = exec.stats();
    assert_eq!(s.completed, 1, "{s:?}");
    assert_eq!(s.dispatched, 2, "{s:?}");
    exec.shutdown();
}

#[test]
fn concurrent_submissions_of_one_identity_coalesce() {
    let exec = ProcessShardExecutor::start(opts());
    let job = &jobs()[1];
    let w = ms_workloads::by_name(&job.workload, job.scale).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                exec.run(job, &w, 0).expect("ok");
            });
        }
    });
    let stats = exec.stats();
    assert_eq!(stats.completed, 1, "one compute for four submitters: {stats:?}");
    assert_eq!(stats.dedup_joins, 3, "{stats:?}");
    exec.shutdown();
}
