//! Admission control and graceful drain: a full queue answers
//! `overloaded` immediately (never hangs), and a shutdown drains queued
//! and in-flight work, answers it, then closes the listener.

use ms_serve::protocol::{self, Response};
use ms_serve::{Server, ServerConfig};
use ms_sweep::{Executor, InProcessExecutor, Job, SweepCache};
use ms_workloads::Workload;
use multiscalar::RunStats;
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Evaluations block until released (see `tests/dedup.rs`).
struct GatedExecutor {
    inner: InProcessExecutor,
    entered: AtomicUsize,
    open: Mutex<bool>,
    cv: Condvar,
}

impl GatedExecutor {
    fn new() -> GatedExecutor {
        GatedExecutor {
            inner: InProcessExecutor::new(),
            entered: AtomicUsize::new(0),
            open: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl Executor for GatedExecutor {
    fn run(&self, job: &Job, w: &Workload, slot: usize) -> Result<RunStats, String> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        drop(open);
        self.inner.run(job, w, slot)
    }

    fn name(&self) -> &str {
        "gated"
    }
}

/// A connection that has sent one pipelined request and not yet read
/// the response.
struct PendingClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl PendingClient {
    fn send(addr: std::net::SocketAddr, line: &str) -> PendingClient {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut client = PendingClient { writer, reader: BufReader::new(stream) };
        let mut hello = String::new();
        client.reader.read_line(&mut hello).unwrap();
        client.writer.write_all(line.as_bytes()).unwrap();
        client.writer.write_all(b"\n").unwrap();
        client
    }

    fn response(&mut self) -> Response {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        protocol::parse_response(&line).expect(&line)
    }
}

fn run_line(workload: &str, units: usize) -> String {
    format!("{{\"op\":\"run\",\"id\":1,\"workload\":\"{workload}\",\"units\":{units}}}")
}

#[test]
fn full_queue_answers_overloaded_and_drain_answers_the_queue() {
    // One worker, queue depth 2: one request occupies the worker (held
    // by the gate), two sit in the queue, and the fourth *distinct*
    // design point must be refused — immediately, not by timing out.
    let exec = Arc::new(GatedExecutor::new());
    let cfg = ServerConfig { workers: 1, queue_depth: 2, ..ServerConfig::default() };
    let server = Server::start(cfg, Arc::clone(&exec) as Arc<dyn Executor>).expect("bind");
    let addr = server.addr();

    let mut occupying = PendingClient::send(addr, &run_line("wc", 2));
    while exec.entered.load(Ordering::SeqCst) < 1 {
        std::thread::yield_now();
    }
    // Worker is now blocked inside the gate; these two fill the queue.
    let mut queued_a = PendingClient::send(addr, &run_line("wc", 4));
    let mut queued_b = PendingClient::send(addr, &run_line("wc", 8));
    while server.stats().queue_depth < 2 {
        std::thread::yield_now();
    }

    // Queue full: a fourth distinct point is refused with a retry hint.
    let mut refused = PendingClient::send(addr, &run_line("cmp", 4));
    match refused.response() {
        Response::Error { code, retry_after_ms, .. } => {
            assert_eq!(code, "overloaded");
            assert!(retry_after_ms.is_some(), "overload carries a retry-after hint");
        }
        other => panic!("expected overloaded, got {other:?}"),
    }
    assert_eq!(server.stats().overloaded, 1);

    // Graceful drain: shutdown arrives while one point executes and two
    // wait. All three must be answered before the bye goes out.
    let mut closer = PendingClient::send(addr, "{\"op\":\"shutdown\",\"id\":9}");
    // Give the drain a moment to begin, then release the gate so the
    // occupied worker (and then the queue) can finish.
    while !server.stats().draining {
        std::thread::yield_now();
    }
    exec.release();

    assert!(matches!(occupying.response(), Response::Result { .. }), "in-flight work answered");
    assert!(matches!(queued_a.response(), Response::Result { .. }), "queued work answered");
    assert!(matches!(queued_b.response(), Response::Result { .. }), "queued work answered");
    assert_eq!(closer.response(), Response::Bye { id: 9 }, "bye only after the drain");

    server.join();
    assert_eq!(exec.entered.load(Ordering::SeqCst), 3, "refused point never executed");

    // The listener is closed: a fresh connect fails or sees EOF.
    let gone = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut buf = [0u8; 1];
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        }
    };
    assert!(gone, "listener must be closed after the drain");
}

#[test]
fn requests_during_a_drain_are_rejected_as_shutting_down() {
    let exec = Arc::new(GatedExecutor::new());
    let cfg = ServerConfig { workers: 1, queue_depth: 8, ..ServerConfig::default() };
    let server = Server::start(cfg, Arc::clone(&exec) as Arc<dyn Executor>).expect("bind");
    let addr = server.addr();

    // Hold a computation so the drain cannot finish instantly, and keep
    // a second connection open from before the drain began.
    let mut held = PendingClient::send(addr, &run_line("wc", 2));
    while exec.entered.load(Ordering::SeqCst) < 1 {
        std::thread::yield_now();
    }
    let survivor = TcpStream::connect(addr).unwrap();
    survivor.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let mut survivor_writer = survivor.try_clone().unwrap();
    let mut survivor_reader = BufReader::new(survivor);
    let mut hello = String::new();
    survivor_reader.read_line(&mut hello).unwrap();

    let mut closer = PendingClient::send(addr, "{\"op\":\"shutdown\",\"id\":1}");
    while !server.stats().draining {
        std::thread::yield_now();
    }

    // New compute on the surviving connection is refused, not queued.
    survivor_writer.write_all(run_line("cmp", 8).as_bytes()).unwrap();
    survivor_writer.write_all(b"\n").unwrap();
    let mut line = String::new();
    survivor_reader.read_line(&mut line).unwrap();
    match protocol::parse_response(&line).expect(&line) {
        Response::Error { code, .. } => assert_eq!(code, "shutting_down"),
        other => panic!("expected shutting_down, got {other:?}"),
    }

    exec.release();
    assert!(matches!(held.response(), Response::Result { .. }), "pre-drain work still answered");
    assert_eq!(closer.response(), Response::Bye { id: 1 });
    server.join();
    assert_eq!(exec.entered.load(Ordering::SeqCst), 1, "drain-time request never executed");
}

#[test]
fn cache_hits_are_served_even_when_the_queue_is_full() {
    // Saturation must not take down what the daemon already knows: a
    // full queue still answers cache hits (and stats, and pings).
    let dir = std::env::temp_dir().join(format!("ms-serve-bp-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exec = Arc::new(GatedExecutor::new());
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 1,
        cache: SweepCache::at(&dir),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg, Arc::clone(&exec) as Arc<dyn Executor>).expect("bind");
    let addr = server.addr();

    // Warm one point into the cache while the gate is open.
    exec.release();
    let mut warm = PendingClient::send(addr, &run_line("wc", 2));
    let warm_payload = match warm.response() {
        Response::Result { payload, .. } => payload,
        other => panic!("{other:?}"),
    };

    // Close the gate again and saturate: one executing, one queued.
    *exec.open.lock().unwrap() = false;
    let _occupying = PendingClient::send(addr, &run_line("wc", 4));
    while exec.entered.load(Ordering::SeqCst) < 2 {
        std::thread::yield_now();
    }
    let _queued = PendingClient::send(addr, &run_line("wc", 8));
    while server.stats().queue_depth < 1 {
        std::thread::yield_now();
    }

    // The warmed point is still served, byte-identically, from cache.
    let mut hit = PendingClient::send(addr, &run_line("wc", 2));
    match hit.response() {
        Response::Result { payload, .. } => assert_eq!(payload, warm_payload),
        other => panic!("expected a cache hit, got {other:?}"),
    }
    assert!(server.stats().cache_hits >= 1);

    exec.release();
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
