//! End-to-end determinism: a served response is byte-identical to what
//! a cold `mssweep`-style run computes for the same design point, and a
//! served sweep is byte-identical to the `results.json` document.

use ms_serve::load::{run_load, LoadOptions};
use ms_serve::protocol::{self, Response};
use ms_serve::{Server, ServerConfig};
use ms_sweep::{artifacts, run_jobs, InProcessExecutor, SweepCache, SweepOptions, SweepSpec};
use ms_workloads::Scale;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

fn ask(addr: std::net::SocketAddr, line: &str) -> Response {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    reader.read_line(&mut buf).unwrap(); // hello
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    buf.clear();
    reader.read_line(&mut buf).unwrap();
    protocol::parse_response(&buf).expect(&buf)
}

#[test]
fn served_point_bytes_equal_cold_engine_bytes() {
    let spec = SweepSpec {
        workloads: vec!["wc".into()],
        scale: Scale::Test,
        widths: vec![1],
        orders: vec![false],
        unit_counts: vec![4],
        include_scalar: false,
        partitions: Vec::new(),
    };
    // The reference bytes: what a cold, cache-less engine run renders
    // into results.json for this design point.
    let report = run_jobs(spec.expand(), &SweepOptions::default());
    let cold = artifacts::outcome_json(&report.outcomes[0]);

    let server =
        Server::start(ServerConfig::default(), Arc::new(InProcessExecutor::new())).expect("bind");
    let served = match ask(server.addr(), r#"{"op":"run","id":1,"workload":"wc","units":4}"#) {
        Response::Result { payload, .. } => payload,
        other => panic!("{other:?}"),
    };
    assert_eq!(served, cold, "served bytes != cold engine bytes");
    server.shutdown();
    server.join();
}

#[test]
fn warm_cache_and_cold_compute_serve_identical_bytes() {
    let dir = std::env::temp_dir().join(format!("ms-serve-bytes-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig { cache: SweepCache::at(&dir), ..ServerConfig::default() };
    let server = Server::start(cfg, Arc::new(InProcessExecutor::new())).expect("bind");
    let addr = server.addr();

    let line = r#"{"op":"run","id":1,"workload":"cmp","units":8}"#;
    let cold = match ask(addr, line) {
        Response::Result { payload, .. } => payload,
        other => panic!("{other:?}"),
    };
    let warm = match ask(addr, line) {
        Response::Result { payload, .. } => payload,
        other => panic!("{other:?}"),
    };
    assert_eq!(cold, warm, "cache-served bytes != computed bytes");
    let stats = server.stats();
    assert_eq!((stats.computed, stats.cache_hits), (1, 1), "{stats:?}");
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn served_sweep_bytes_equal_results_json() {
    let spec = SweepSpec {
        workloads: vec!["wc".into(), "cmp".into()],
        scale: Scale::Test,
        widths: vec![1],
        orders: vec![false],
        unit_counts: vec![4],
        include_scalar: true,
        partitions: Vec::new(),
    };
    let report = run_jobs(spec.expand(), &SweepOptions::default());
    let results_json = artifacts::results_json(&report);

    let server =
        Server::start(ServerConfig::default(), Arc::new(InProcessExecutor::new())).expect("bind");
    let served = match ask(
        server.addr(),
        r#"{"op":"sweep","id":1,"workloads":["wc","cmp"],"widths":[1],"units":[4]}"#,
    ) {
        Response::SweepResult { payload, .. } => payload,
        other => panic!("{other:?}"),
    };
    assert_eq!(served, results_json, "served sweep != results.json bytes");
    server.shutdown();
    server.join();
}

#[test]
fn load_generator_reports_are_byte_deterministic_across_cache_states() {
    let dir = std::env::temp_dir().join(format!("ms-serve-bytes-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig {
        workers: 2,
        queue_depth: 64,
        cache: SweepCache::at(&dir),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg, Arc::new(InProcessExecutor::new())).expect("bind");

    let opts = LoadOptions {
        addr: server.addr().to_string(),
        connections: 4,
        requests_per_conn: 8,
        points: 3,
        seed: 7,
        max_retries: 8,
        ..LoadOptions::default()
    };
    // Run A computes (cold cache); run B is answered from cache and
    // dedup. The deterministic reports must be byte-identical anyway.
    let a = run_load(&opts).expect("cold load run");
    let b = run_load(&opts).expect("warm load run");
    assert_eq!(a.divergent, 0, "{:?}", a.per_point);
    assert_eq!(a.failed, 0);
    assert_eq!(a.report_json(), b.report_json(), "cold and warm reports differ");

    let stats = server.stats();
    assert!(stats.cache_hits > 0, "warm run must hit the cache: {stats:?}");
    assert!(stats.computed <= 3, "at most one compute per point: {stats:?}");
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
