//! Single-flight dedup: N concurrent identical requests cause exactly
//! one engine evaluation, and every requester receives byte-identical
//! bytes.

use ms_serve::protocol::{self, Response};
use ms_serve::{Server, ServerConfig, StatsSnapshot};
use ms_sweep::{Executor, InProcessExecutor, Job, SweepCache};
use ms_workloads::Workload;
use multiscalar::RunStats;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// An executor whose evaluations block until the test releases a gate,
/// so requests provably pile up on the in-flight computation instead of
/// racing past it into the disk cache.
struct GatedExecutor {
    inner: InProcessExecutor,
    entered: AtomicUsize,
    open: Mutex<bool>,
    cv: Condvar,
}

impl GatedExecutor {
    fn new() -> GatedExecutor {
        GatedExecutor {
            inner: InProcessExecutor::new(),
            entered: AtomicUsize::new(0),
            open: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl Executor for GatedExecutor {
    fn run(&self, job: &Job, w: &Workload, slot: usize) -> Result<RunStats, String> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        drop(open);
        self.inner.run(job, w, slot)
    }

    fn name(&self) -> &str {
        "gated"
    }
}

fn fetch_stats(addr: std::net::SocketAddr) -> StatsSnapshot {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // hello
    writer.write_all(b"{\"op\":\"stats\",\"id\":0}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    match protocol::parse_response(&line).unwrap() {
        Response::Stats { raw, .. } => StatsSnapshot::from_json(&raw).unwrap(),
        other => panic!("{other:?}"),
    }
}

#[test]
fn identical_concurrent_requests_evaluate_once_and_answer_identically() {
    const N: usize = 8;
    let exec = Arc::new(GatedExecutor::new());
    let cfg = ServerConfig { workers: 2, queue_depth: 16, ..ServerConfig::default() };
    let server = Server::start(cfg, Arc::clone(&exec) as Arc<dyn Executor>).expect("bind");
    let addr = server.addr();

    // N threads submit the identical request concurrently. The gate
    // holds the one real evaluation open until all of them have landed.
    let payloads: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for _ in 0..N {
            let payloads = Arc::clone(&payloads);
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                reader.read_line(&mut line).unwrap(); // hello
                writer
                    .write_all(b"{\"op\":\"run\",\"id\":1,\"workload\":\"wc\",\"units\":4}\n")
                    .unwrap();
                line.clear();
                reader.read_line(&mut line).unwrap();
                match protocol::parse_response(&line).unwrap() {
                    Response::Result { id: 1, payload } => payloads.lock().unwrap().push(payload),
                    other => panic!("{other:?}"),
                }
            });
        }

        // The leader's evaluation is in the gate; the other N-1 must
        // coalesce onto its flight rather than evaluate or enqueue.
        // (The worker popping the item races the joiners arriving, so
        // wait for both before judging the count.)
        while fetch_stats(addr).dedup_joins < (N as u64) - 1
            || exec.entered.load(Ordering::SeqCst) < 1
        {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(exec.entered.load(Ordering::SeqCst), 1, "exactly one evaluation entered");
        exec.release();
    });

    let payloads = payloads.lock().unwrap();
    assert_eq!(payloads.len(), N);
    for p in payloads.iter() {
        assert_eq!(p, &payloads[0], "every requester gets byte-identical bytes");
        assert!(p.contains("\"job\":\"wc@test/ms4/w1/inorder\""), "{p}");
        assert!(p.contains("\"ok\":true"), "{p}");
    }

    let stats = fetch_stats(addr);
    assert_eq!(stats.computed, 1, "{stats:?}");
    assert_eq!(stats.dedup_joins, (N as u64) - 1, "{stats:?}");
    assert_eq!(stats.cache_hits, 0, "{stats:?}");
    assert_eq!(exec.entered.load(Ordering::SeqCst), 1, "still exactly one evaluation");

    server.shutdown();
    server.join();
}

#[test]
fn requests_after_the_flight_resolves_hit_the_cache_not_the_executor() {
    let dir = std::env::temp_dir().join(format!("ms-serve-dedup-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exec = Arc::new(GatedExecutor::new());
    exec.release(); // no gating needed here
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 4,
        cache: SweepCache::at(&dir),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg, Arc::clone(&exec) as Arc<dyn Executor>).expect("bind");
    let addr = server.addr();

    let ask = || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        writer.write_all(b"{\"op\":\"run\",\"id\":1,\"workload\":\"cmp\",\"units\":2}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        match protocol::parse_response(&line).unwrap() {
            Response::Result { payload, .. } => payload,
            other => panic!("{other:?}"),
        }
    };

    let first = ask();
    let second = ask();
    assert_eq!(first, second, "cache-served bytes match computed bytes");
    assert_eq!(exec.entered.load(Ordering::SeqCst), 1, "second request never evaluates");
    let stats = fetch_stats(addr);
    assert_eq!((stats.computed, stats.cache_hits), (1, 1), "{stats:?}");

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
