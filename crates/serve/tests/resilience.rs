//! Service-layer robustness: a leader that panics mid-compute must wake
//! its joiners with a structured error (and the next caller must get to
//! lead a fresh flight), and idle connections are evicted with a
//! structured `timeout` line, never silently.

use ms_serve::protocol::{self, Response};
use ms_serve::{Server, ServerConfig, StatsSnapshot};
use ms_sweep::{Executor, InProcessExecutor, Job, SweepCache};
use ms_workloads::Workload;
use multiscalar::RunStats;
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Panics on its first evaluation — but only once the test opens the
/// gate, so joiners provably pile onto the doomed flight first. Later
/// evaluations delegate to the real engine.
struct PanicOnceExecutor {
    inner: InProcessExecutor,
    entered: AtomicUsize,
    open: Mutex<bool>,
    cv: Condvar,
}

impl PanicOnceExecutor {
    fn new() -> PanicOnceExecutor {
        PanicOnceExecutor {
            inner: InProcessExecutor::new(),
            entered: AtomicUsize::new(0),
            open: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl Executor for PanicOnceExecutor {
    fn run(&self, job: &Job, w: &Workload, slot: usize) -> Result<RunStats, String> {
        if self.entered.fetch_add(1, Ordering::SeqCst) == 0 {
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
            panic!("injected leader panic (test)");
        }
        self.inner.run(job, w, slot)
    }

    fn name(&self) -> &str {
        "panic-once"
    }
}

fn fetch_stats(addr: SocketAddr) -> StatsSnapshot {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // hello
    writer.write_all(b"{\"op\":\"stats\",\"id\":0}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    match protocol::parse_response(&line).unwrap() {
        Response::Stats { raw, .. } => StatsSnapshot::from_json(&raw).unwrap(),
        other => panic!("{other:?}"),
    }
}

fn ask(addr: SocketAddr) -> String {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // hello
    writer.write_all(b"{\"op\":\"run\",\"id\":1,\"workload\":\"wc\",\"units\":4}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    match protocol::parse_response(&line).unwrap() {
        Response::Result { id: 1, payload } => payload,
        other => panic!("{other:?}"),
    }
}

#[test]
fn leader_panic_wakes_joiners_with_structured_error_and_frees_the_flight() {
    const JOINERS: usize = 3;
    let exec = Arc::new(PanicOnceExecutor::new());
    let cfg = ServerConfig { workers: 2, queue_depth: 16, ..ServerConfig::default() };
    let server = Server::start(cfg, Arc::clone(&exec) as Arc<dyn Executor>).expect("bind");
    let addr = server.addr();

    let payloads: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for _ in 0..(1 + JOINERS) {
            let payloads = Arc::clone(&payloads);
            scope.spawn(move || {
                // Block on the request first; only then take the lock
                // (holding it across `ask` would serialize the clients).
                let p = ask(addr);
                payloads.lock().unwrap().push(p);
            });
        }
        // Hold the doomed evaluation open until every joiner has landed
        // on its flight, then let it panic with an audience.
        while fetch_stats(addr).dedup_joins < JOINERS as u64
            || exec.entered.load(Ordering::SeqCst) < 1
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        exec.release();
    });

    let payloads = payloads.lock().unwrap();
    assert_eq!(payloads.len(), 1 + JOINERS);
    for p in payloads.iter() {
        assert_eq!(p, &payloads[0], "leader and joiners hear identical bytes");
        assert!(p.contains("\"ok\":false"), "{p}");
        assert!(p.contains("executor panicked: injected leader panic"), "{p}");
    }
    drop(payloads);

    // The flight key is free again: the next caller leads a fresh
    // flight, and this time the evaluation succeeds.
    let retry = ask(addr);
    assert!(retry.contains("\"ok\":true"), "{retry}");
    assert_eq!(exec.entered.load(Ordering::SeqCst), 2, "retry re-evaluated");

    server.shutdown();
    server.join();
}

#[test]
fn idle_connections_get_a_structured_timeout_then_eof() {
    let cfg = ServerConfig {
        workers: 1,
        idle_timeout_ms: 250,
        cache: SweepCache::disabled(),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg, Arc::new(InProcessExecutor::new())).expect("bind");
    let addr = server.addr();

    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // hello

    // Activity is still served before the idle window elapses.
    writer.write_all(b"{\"op\":\"ping\",\"id\":7}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(protocol::parse_response(&line).unwrap(), Response::Pong { id: 7 });

    // Then silence: the daemon announces the eviction before closing.
    line.clear();
    reader.read_line(&mut line).unwrap();
    match protocol::parse_response(&line).unwrap() {
        Response::Error { id, code, detail, .. } => {
            assert_eq!((id, code.as_str()), (0, "timeout"), "{line}");
            assert!(detail.contains("250ms"), "{detail}");
        }
        other => panic!("{other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0, "connection closed after timeout");

    // The daemon itself is unaffected: a new connection still serves.
    assert!(ask(addr).contains("\"ok\":true"));

    server.shutdown();
    server.join();
}
