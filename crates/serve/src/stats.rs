//! Daemon counters: what was served, from which layer, at what cost.
//!
//! All counters are relaxed atomics — they are operational telemetry,
//! not part of any deterministic artifact, which is why the `msload`
//! deterministic report excludes them. A [`StatsSnapshot`] renders in a
//! fixed field order so CI can parse it with simple tooling.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Live counters, shared by every connection and worker thread.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Request lines parsed successfully (any op).
    pub requests: AtomicU64,
    /// Design points actually simulated by a worker.
    pub computed: AtomicU64,
    /// Design points answered from the disk cache.
    pub cache_hits: AtomicU64,
    /// Requests that coalesced onto another request's in-flight
    /// computation (single-flight joiners).
    pub dedup_joins: AtomicU64,
    /// Requests refused because the compute queue was full.
    pub overloaded: AtomicU64,
    /// Request lines rejected as malformed or invalid.
    pub bad_requests: AtomicU64,
    /// Design points waiting in the compute queue right now.
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub peak_queue_depth: AtomicU64,
    /// Whether the daemon is draining toward shutdown.
    pub draining: AtomicBool,
}

impl ServeStats {
    /// Fresh counters, all zero.
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// Records a queue push and maintains the high-water mark.
    pub fn queue_pushed(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a queue pop.
    pub fn queue_popped(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self, workers: usize) -> StatsSnapshot {
        StatsSnapshot {
            workers: workers as u64,
            requests: self.requests.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            dedup_joins: self.dedup_joins.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the daemon's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Worker-pool size (configuration, not a counter).
    pub workers: u64,
    /// See [`ServeStats::requests`].
    pub requests: u64,
    /// See [`ServeStats::computed`].
    pub computed: u64,
    /// See [`ServeStats::cache_hits`].
    pub cache_hits: u64,
    /// See [`ServeStats::dedup_joins`].
    pub dedup_joins: u64,
    /// See [`ServeStats::overloaded`].
    pub overloaded: u64,
    /// See [`ServeStats::bad_requests`].
    pub bad_requests: u64,
    /// See [`ServeStats::queue_depth`].
    pub queue_depth: u64,
    /// See [`ServeStats::peak_queue_depth`].
    pub peak_queue_depth: u64,
    /// See [`ServeStats::draining`].
    pub draining: bool,
}

impl StatsSnapshot {
    /// The snapshot as a JSON object with a fixed field order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers\":{},\"requests\":{},\"computed\":{},\"cache_hits\":{},\
             \"dedup_joins\":{},\"overloaded\":{},\"bad_requests\":{},\"queue_depth\":{},\
             \"peak_queue_depth\":{},\"draining\":{}}}",
            self.workers,
            self.requests,
            self.computed,
            self.cache_hits,
            self.dedup_joins,
            self.overloaded,
            self.bad_requests,
            self.queue_depth,
            self.peak_queue_depth,
            self.draining,
        )
    }

    /// Parses a snapshot back out of its [`StatsSnapshot::to_json`]
    /// rendering (used by `msload --stats-out` and tests).
    ///
    /// # Errors
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(text: &str) -> Result<StatsSnapshot, String> {
        let doc = ms_trace::jsonv::parse(text)?;
        let num = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(ms_trace::jsonv::JsonValue::as_u64)
                .ok_or_else(|| format!("stats object lacks numeric `{key}`"))
        };
        Ok(StatsSnapshot {
            workers: num("workers")?,
            requests: num("requests")?,
            computed: num("computed")?,
            cache_hits: num("cache_hits")?,
            dedup_joins: num("dedup_joins")?,
            overloaded: num("overloaded")?,
            bad_requests: num("bad_requests")?,
            queue_depth: num("queue_depth")?,
            peak_queue_depth: num("peak_queue_depth")?,
            draining: doc
                .get("draining")
                .and_then(ms_trace::jsonv::JsonValue::as_bool)
                .ok_or("stats object lacks boolean `draining`")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_json() {
        let stats = ServeStats::new();
        stats.requests.store(10, Ordering::Relaxed);
        stats.computed.store(3, Ordering::Relaxed);
        stats.cache_hits.store(5, Ordering::Relaxed);
        stats.dedup_joins.store(2, Ordering::Relaxed);
        stats.draining.store(true, Ordering::Relaxed);
        let snap = stats.snapshot(4);
        let parsed = StatsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.workers, 4);
        assert!(parsed.draining);
    }

    #[test]
    fn queue_depth_tracks_a_high_water_mark() {
        let stats = ServeStats::new();
        stats.queue_pushed();
        stats.queue_pushed();
        stats.queue_popped();
        stats.queue_pushed();
        let snap = stats.snapshot(1);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.peak_queue_depth, 2);
    }

    #[test]
    fn json_field_order_is_fixed() {
        let j = StatsSnapshot::default().to_json();
        assert!(j.starts_with("{\"workers\":0,\"requests\":0,\"computed\":0,"), "{j}");
        assert!(j.ends_with("\"draining\":false}"), "{j}");
    }
}
