//! The process-shard **worker**: the child side of the
//! `multiscalar-shard/v1` pipe protocol.
//!
//! A worker is a re-exec of the host binary with `--worker`
//! (`msserve --worker`, `mssweep --worker`, `mschaos --worker` all call
//! [`worker_main`]). It speaks line-delimited JSON over its own
//! stdin/stdout to the supervisor in the parent process:
//!
//! ```text
//! parent -> worker   {"op":"job","job_id":3,"workload":"wc","scale":"test",
//!                     "kind":"multiscalar","cfg":"simconfig v2;..."}
//!                    (optional "partition":"part v1;..." — auto-partition
//!                     the workload before simulating)
//! parent -> worker   {"op":"exit"}
//! worker -> parent   {"type":"ready","pid":4242,"gen":0}
//! worker -> parent   {"type":"hb","job_id":3}            (periodic, while busy)
//! worker -> parent   {"type":"result","job_id":3,"ok":true,"stats":"cycles 10\n..."}
//! worker -> parent   {"type":"result","job_id":3,"ok":false,"error":"..."}
//! ```
//!
//! The configuration travels as its [`multiscalar::SimConfig::stable_key`]
//! rendering and the result travels as its
//! [`ms_sweep::statsio::stats_to_kv`] rendering — both canonical,
//! versioned serializations with strict parsers — so a result that
//! crossed the pipe is bit-for-bit the result an in-process run would
//! have produced, and merged artifacts stay byte-identical no matter
//! which process computed each point.
//!
//! A worker holds **no state the parent cannot reconstruct**: no cache
//! handle, no artifact writes, nothing but compute. Dying at any moment
//! therefore loses at most the one in-flight job, which the supervisor
//! re-queues by idempotent identity. Deliberate deaths are available for
//! chaos testing through the [`FAULT_ENV`] variable.

use ms_sweep::statsio::{stats_from_kv, stats_to_kv};
use ms_sweep::{Executor, InProcessExecutor, Job, JobKind};
use ms_trace::json;
use ms_trace::jsonv::{self, JsonValue};
use ms_workloads::Scale;
use multiscalar::{RunStats, SimConfig};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Env var carrying an injected fault spec: `kill@K`, `panic@K`,
/// `stall@K:MS`, or `garbage@K`, firing on the K-th job (0-based) this
/// worker process receives. Used by the chaos harness; ignored unless
/// [`GEN_ENV`] is `0` (first spawn), so a restarted worker always
/// succeeds and merged artifacts converge.
pub const FAULT_ENV: &str = "MS_SHARD_FAULT";

/// Env var the supervisor sets to the worker's spawn generation
/// (0 for the first spawn of a slot, incremented on every restart).
pub const GEN_ENV: &str = "MS_SHARD_GEN";

/// Heartbeat period while a job is computing.
pub const HEARTBEAT_MS: u64 = 25;

/// `job_id` sentinel meaning "no job in flight".
const IDLE: u64 = u64::MAX;

// ---------------------------------------------------------------------
// Wire rendering and parsing (used by both worker and supervisor).
// ---------------------------------------------------------------------

/// Renders the parent->worker line assigning `job` as `job_id`.
pub fn job_line(job_id: u64, job: &Job) -> String {
    // `partition` is emitted only when present, so pre-axis supervisors
    // and workers keep exchanging byte-identical lines.
    let partition = match &job.partition {
        Some(p) => format!(",\"partition\":{}", json::string(p)),
        None => String::new(),
    };
    format!(
        "{{\"op\":\"job\",\"job_id\":{job_id},\"workload\":{},\"scale\":{},\"kind\":{},\"cfg\":{}{partition}}}\n",
        json::string(&job.workload),
        json::string(job.scale.id()),
        json::string(job.kind.id()),
        json::string(&job.cfg.stable_key()),
    )
}

/// Renders the parent->worker line asking the worker to exit cleanly.
pub fn exit_line() -> String {
    "{\"op\":\"exit\"}\n".to_string()
}

/// A parsed worker->parent line.
#[derive(Clone, Debug)]
pub enum WorkerLine {
    /// The worker came up and is ready for jobs.
    Ready {
        /// The worker's OS process id (diagnostics only).
        pid: u64,
        /// The spawn generation echoed from [`GEN_ENV`].
        gen: u64,
    },
    /// The worker is alive and computing `job_id`.
    Heartbeat {
        /// The in-flight job.
        job_id: u64,
    },
    /// The worker finished `job_id`.
    Result {
        /// The finished job.
        job_id: u64,
        /// Validated stats, or the executor's failure string.
        result: Result<Box<RunStats>, String>,
    },
}

/// Parses one worker->parent line.
///
/// # Errors
/// Any malformed line is an error naming the problem; the supervisor
/// treats it as a protocol breach and replaces the worker (a confused
/// worker cannot be trusted with further jobs).
pub fn parse_worker_line(line: &str) -> Result<WorkerLine, String> {
    let doc = jsonv::parse(line.trim_end())?;
    let ty = doc.get("type").and_then(JsonValue::as_str).ok_or("worker line has no `type`")?;
    let job_id = |field: &str| {
        doc.get(field).and_then(JsonValue::as_u64).ok_or("worker line has no `job_id`")
    };
    match ty {
        "ready" => Ok(WorkerLine::Ready {
            pid: doc.get("pid").and_then(JsonValue::as_u64).unwrap_or(0),
            gen: doc.get("gen").and_then(JsonValue::as_u64).unwrap_or(0),
        }),
        "hb" => Ok(WorkerLine::Heartbeat { job_id: job_id("job_id")? }),
        "result" => {
            let id = job_id("job_id")?;
            let ok = doc.get("ok").and_then(JsonValue::as_bool).ok_or("result has no `ok`")?;
            if ok {
                let kv = doc
                    .get("stats")
                    .and_then(JsonValue::as_str)
                    .ok_or("ok result has no `stats`")?;
                let stats = stats_from_kv(kv).ok_or("result stats failed strict kv validation")?;
                Ok(WorkerLine::Result { job_id: id, result: Ok(Box::new(stats)) })
            } else {
                let error = doc
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .ok_or("failed result has no `error`")?
                    .to_string();
                Ok(WorkerLine::Result { job_id: id, result: Err(error) })
            }
        }
        other => Err(format!("unknown worker line type `{other}`")),
    }
}

/// A parsed parent->worker line.
#[derive(Clone, Debug, PartialEq)]
enum ParentLine {
    // Boxed: a bare `Job` would dwarf `Exit` (clippy::large_enum_variant).
    Job { job_id: u64, job: Box<Job> },
    Exit,
}

fn parse_parent_line(line: &str) -> Result<ParentLine, String> {
    let doc = jsonv::parse(line.trim_end())?;
    let op = doc.get("op").and_then(JsonValue::as_str).ok_or("parent line has no `op`")?;
    match op {
        "exit" => Ok(ParentLine::Exit),
        "job" => {
            let job_id =
                doc.get("job_id").and_then(JsonValue::as_u64).ok_or("job has no `job_id`")?;
            let workload = doc
                .get("workload")
                .and_then(JsonValue::as_str)
                .ok_or("job has no `workload`")?
                .to_string();
            let scale = doc
                .get("scale")
                .and_then(JsonValue::as_str)
                .and_then(Scale::parse)
                .ok_or("job has a bad `scale`")?;
            let kind = match doc.get("kind").and_then(JsonValue::as_str) {
                Some("scalar") => JobKind::Scalar,
                Some("multiscalar") => JobKind::Multiscalar,
                _ => return Err("job has a bad `kind`".into()),
            };
            let key = doc.get("cfg").and_then(JsonValue::as_str).ok_or("job has no `cfg`")?;
            let cfg = SimConfig::from_stable_key(key)
                .ok_or_else(|| format!("job `cfg` is not a valid stable key: `{key}`"))?;
            let partition = doc.get("partition").and_then(JsonValue::as_str).map(str::to_string);
            Ok(ParentLine::Job {
                job_id,
                job: Box::new(Job { workload, scale, kind, cfg, partition }),
            })
        }
        other => Err(format!("unknown parent op `{other}`")),
    }
}

fn result_line(job_id: u64, result: &Result<RunStats, String>) -> String {
    match result {
        Ok(stats) => format!(
            "{{\"type\":\"result\",\"job_id\":{job_id},\"ok\":true,\"stats\":{}}}\n",
            json::string(&stats_to_kv(stats))
        ),
        Err(e) => format!(
            "{{\"type\":\"result\",\"job_id\":{job_id},\"ok\":false,\"error\":{}}}\n",
            json::string(e)
        ),
    }
}

// ---------------------------------------------------------------------
// Fault injection (chaos testing).
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq)]
enum FaultKind {
    Kill,
    Panic,
    Stall(u64),
    Garbage,
}

#[derive(Clone, Copy, Debug, PartialEq)]
struct FaultSpec {
    kind: FaultKind,
    at: u64,
}

impl FaultSpec {
    fn parse(spec: &str) -> Option<FaultSpec> {
        let (kind, at) = spec.split_once('@')?;
        match kind {
            "kill" => Some(FaultSpec { kind: FaultKind::Kill, at: at.parse().ok()? }),
            "panic" => Some(FaultSpec { kind: FaultKind::Panic, at: at.parse().ok()? }),
            "garbage" => Some(FaultSpec { kind: FaultKind::Garbage, at: at.parse().ok()? }),
            "stall" => {
                let (at, ms) = at.split_once(':')?;
                Some(FaultSpec { kind: FaultKind::Stall(ms.parse().ok()?), at: at.parse().ok()? })
            }
            _ => None,
        }
    }

    /// The fault this process should inject, if any. Faults only arm on
    /// generation 0 so a supervisor restart converges to a good result.
    fn from_env(gen: u64) -> Option<FaultSpec> {
        if gen != 0 {
            return None;
        }
        FaultSpec::parse(&std::env::var(FAULT_ENV).ok()?)
    }
}

// ---------------------------------------------------------------------
// The worker process body.
// ---------------------------------------------------------------------

fn write_line(out: &Mutex<std::io::Stdout>, line: &str) {
    let mut out = out.lock().unwrap();
    // A dead pipe means the supervisor is gone; nothing useful remains.
    if out.write_all(line.as_bytes()).is_err() || out.flush().is_err() {
        std::process::exit(3);
    }
}

/// Runs the worker protocol over this process's stdin/stdout until the
/// parent sends `exit` or closes the pipe. Returns the process exit
/// code: 0 on a clean exit, 2 on a protocol breach from the parent.
///
/// Jobs execute on a plain [`InProcessExecutor`] (no metrics artifacts,
/// no CPI accounting — process shards compute stats only). A panic in
/// the simulator is *not* caught: the process dies and the supervisor's
/// restart/re-queue machinery recovers, which is exactly the discipline
/// this mode exists to prove.
pub fn worker_main() -> i32 {
    let gen: u64 = std::env::var(GEN_ENV).ok().and_then(|g| g.parse().ok()).unwrap_or(0);
    let fault = FaultSpec::from_env(gen);
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    write_line(
        &stdout,
        &format!("{{\"type\":\"ready\",\"pid\":{},\"gen\":{gen}}}\n", std::process::id()),
    );

    // Heartbeat thread: while a job is marked in-flight, prove liveness
    // every HEARTBEAT_MS. Dies with the process.
    let current = Arc::new(AtomicU64::new(IDLE));
    {
        let current = Arc::clone(&current);
        let stdout = Arc::clone(&stdout);
        std::thread::spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_millis(HEARTBEAT_MS));
            let job_id = current.load(Ordering::Relaxed);
            if job_id != IDLE {
                write_line(&stdout, &format!("{{\"type\":\"hb\",\"job_id\":{job_id}}}\n"));
            }
        });
    }

    let exec = InProcessExecutor::new();
    let stdin = std::io::stdin();
    let mut jobs_seen: u64 = 0;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { return 0 };
        if line.trim().is_empty() {
            continue;
        }
        match parse_parent_line(&line) {
            Ok(ParentLine::Exit) => return 0,
            Ok(ParentLine::Job { job_id, job }) => {
                let nth = jobs_seen;
                jobs_seen += 1;
                current.store(job_id, Ordering::Relaxed);
                if let Some(f) = fault.filter(|f| f.at == nth) {
                    match f.kind {
                        // Abrupt death mid-job: no result, pipe closes.
                        FaultKind::Kill => std::process::exit(9),
                        FaultKind::Panic => panic!("injected worker panic (chaos)"),
                        // A confused worker writing junk where a protocol
                        // line belongs; it then never answers this job.
                        FaultKind::Garbage => {
                            write_line(&stdout, "!!garbage 0xDEAD not-a-protocol-line\n");
                            current.store(IDLE, Ordering::Relaxed);
                            continue;
                        }
                        // Heartbeats keep flowing; only the per-job
                        // deadline can catch this one.
                        FaultKind::Stall(ms) => {
                            std::thread::sleep(std::time::Duration::from_millis(ms));
                        }
                    }
                }
                let result =
                    ms_sweep::resolve_workload(&job.workload, job.scale, job.partition.as_deref())
                        .and_then(|(w, _)| exec.run(&job, &w, 0));
                current.store(IDLE, Ordering::Relaxed);
                write_line(&stdout, &result_line(job_id, &result));
            }
            Err(e) => {
                eprintln!("ms-serve worker: protocol breach from parent: {e}");
                return 2;
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            workload: "Wc".into(),
            scale: Scale::Test,
            kind: JobKind::Multiscalar,
            cfg: SimConfig::multiscalar(4).issue(2).out_of_order(true),
            partition: None,
        }
    }

    #[test]
    fn job_lines_round_trip() {
        let line = job_line(7, &job());
        match parse_parent_line(&line).unwrap() {
            ParentLine::Job { job_id, job: parsed } => {
                assert_eq!(job_id, 7);
                assert_eq!(*parsed, job());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_parent_line(&exit_line()).unwrap(), ParentLine::Exit);
    }

    #[test]
    fn job_lines_carry_the_partition_key_when_present() {
        let with =
            Job { partition: Some("part v1;size=8;loops=1;calls=0;fwd=1;rel=1".into()), ..job() };
        let line = job_line(3, &with);
        assert!(line.contains("\"partition\":"), "{line}");
        match parse_parent_line(&line).unwrap() {
            ParentLine::Job { job: parsed, .. } => assert_eq!(*parsed, with),
            other => panic!("{other:?}"),
        }
        // Absent field parses back to None (pre-axis lines stay valid).
        assert!(!job_line(3, &job()).contains("partition"));
    }

    #[test]
    fn result_lines_round_trip_stats_exactly() {
        let stats = RunStats { cycles: 123, instructions: 456, ..RunStats::default() };
        let line = result_line(9, &Ok(stats.clone()));
        match parse_worker_line(&line).unwrap() {
            WorkerLine::Result { job_id, result } => {
                assert_eq!(job_id, 9);
                let got = result.unwrap();
                assert_eq!(stats_to_kv(&got), stats_to_kv(&stats), "kv bytes survive the pipe");
            }
            other => panic!("{other:?}"),
        }
        let line = result_line(9, &Err("boom: it broke".into()));
        match parse_worker_line(&line).unwrap() {
            WorkerLine::Result { result, .. } => {
                assert_eq!(result.unwrap_err(), "boom: it broke");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ready_and_heartbeat_lines_parse() {
        assert!(matches!(
            parse_worker_line("{\"type\":\"ready\",\"pid\":12,\"gen\":3}").unwrap(),
            WorkerLine::Ready { pid: 12, gen: 3 }
        ));
        assert!(matches!(
            parse_worker_line("{\"type\":\"hb\",\"job_id\":5}").unwrap(),
            WorkerLine::Heartbeat { job_id: 5 }
        ));
    }

    #[test]
    fn garbage_lines_are_protocol_breaches() {
        for line in ["!!garbage 0xDEAD", "{\"type\":\"sorcery\"}", "{", ""] {
            assert!(parse_worker_line(line).is_err(), "{line}");
        }
        // Torn stats text inside a well-formed line is also a breach:
        // strict kv validation refuses it.
        let torn = "{\"type\":\"result\",\"job_id\":1,\"ok\":true,\"stats\":\"cycles 1\"}";
        assert!(parse_worker_line(torn).unwrap_err().contains("strict kv"));
    }

    #[test]
    fn fault_specs_parse_and_arm_only_on_gen_zero() {
        assert_eq!(FaultSpec::parse("kill@2"), Some(FaultSpec { kind: FaultKind::Kill, at: 2 }));
        assert_eq!(
            FaultSpec::parse("stall@1:500"),
            Some(FaultSpec { kind: FaultKind::Stall(500), at: 1 })
        );
        assert_eq!(
            FaultSpec::parse("garbage@0"),
            Some(FaultSpec { kind: FaultKind::Garbage, at: 0 })
        );
        assert_eq!(FaultSpec::parse("panic@3"), Some(FaultSpec { kind: FaultKind::Panic, at: 3 }));
        for bad in ["kill", "kill@x", "stall@1", "stall@1:x", "teleport@1", ""] {
            assert_eq!(FaultSpec::parse(bad), None, "{bad}");
        }
    }
}
