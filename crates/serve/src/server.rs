//! The daemon: listener, connection threads, worker pool, admission
//! control, and graceful drain.
//!
//! ## Threading model
//!
//! One acceptor thread polls a non-blocking listener; each connection
//! gets its own thread that reads request lines and writes exactly one
//! response line per request, in order. Compute never happens on a
//! connection thread: a cache-missed design point is pushed onto a
//! bounded queue consumed by [`ServerConfig::workers`] worker threads,
//! and the connection thread waits on the point's [`crate::Flight`].
//!
//! ## Admission control
//!
//! The compute queue is the only unbounded-growth hazard, so it is the
//! thing that is bounded. A request that would push past
//! [`ServerConfig::queue_depth`] is answered `overloaded` with a
//! `retry_after_ms` hint — immediately, not after a timeout — and its
//! flight is resolved `Rejected` so coalesced duplicates hear the same
//! answer. Requests that resolve without computing (cache hits, dedup
//! joins, stats, ping) are never refused: a saturated daemon still
//! serves everything it already knows.
//!
//! ## Drain
//!
//! `shutdown` (the protocol op or [`ServerHandle::shutdown`]) flips the
//! daemon into draining: new connections are refused, new compute is
//! rejected `shutting_down`, but everything already queued or running
//! completes and is answered. Only when the queue is empty and every
//! worker idle does the `bye` line go out and the listener close.

use crate::flight::{FlightBoard, FlightOutcome, Role};
use crate::protocol::{self, Envelope, Request};
use crate::stats::{ServeStats, StatsSnapshot};
use ms_sweep::{artifacts, compute_and_store, Executor, Job, JobFailure, JobOutcome, SweepCache};
use ms_workloads::{by_name, Scale, Workload};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a refused client should back off before retrying.
const RETRY_AFTER_MS: u64 = 100;

/// Poll interval for the acceptor and connection read loops; bounds how
/// long threads take to notice a stop signal.
const POLL: Duration = Duration::from_millis(100);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7461` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads; `0` means `std::thread::available_parallelism()`.
    pub workers: usize,
    /// Bound on queued (not yet executing) design points.
    pub queue_depth: usize,
    /// Result cache shared with `mssweep` (same key space).
    pub cache: SweepCache,
    /// Reject sweeps that expand beyond this many design points.
    pub max_sweep_jobs: usize,
    /// Close a connection that has sent no complete request line for
    /// this many milliseconds; `0` disables the idle timeout. The
    /// daemon answers a structured `timeout` error line before closing,
    /// so clients can tell an idle eviction from a crash.
    pub idle_timeout_ms: u64,
    /// Emit one structured log line per request to stderr.
    pub log: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_depth: 256,
            cache: SweepCache::disabled(),
            max_sweep_jobs: 512,
            idle_timeout_ms: 0,
            log: false,
        }
    }
}

impl ServerConfig {
    fn worker_count(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// One cache-missed design point queued for a worker.
struct WorkItem {
    job: Job,
    workload: Arc<Workload>,
    fingerprint: u64,
    key: String,
    flight: Arc<crate::flight::Flight>,
}

/// The compute queue plus the worker/drain accounting it protects.
#[derive(Default)]
struct QueueState {
    items: VecDeque<WorkItem>,
    /// Design points a worker is executing right now.
    active: usize,
    /// New compute is refused; queued work still completes.
    draining: bool,
    /// Workers exit once the queue is empty.
    stop_workers: bool,
}

type WorkloadTable = HashMap<(String, Scale), Option<(Arc<Workload>, u64)>>;

struct Shared {
    cfg: ServerConfig,
    exec: Arc<dyn Executor>,
    stats: ServeStats,
    board: FlightBoard,
    queue: Mutex<QueueState>,
    /// Wakes workers when work arrives or `stop_workers` flips.
    work_cv: Condvar,
    /// Wakes the drain waiter when the queue empties and workers idle.
    drain_cv: Condvar,
    workloads: Mutex<WorkloadTable>,
    /// Stops the acceptor and the connection read loops.
    stop: AtomicBool,
    workers: usize,
}

impl Shared {
    /// Resolves (and memoizes) a workload by name × scale.
    fn workload(&self, name: &str, scale: Scale) -> Option<(Arc<Workload>, u64)> {
        let key = (name.to_ascii_lowercase(), scale);
        let mut table = self.workloads.lock().unwrap();
        table
            .entry(key)
            .or_insert_with(|| {
                by_name(name, scale).map(|w| {
                    let fp = w.fingerprint();
                    (Arc::new(w), fp)
                })
            })
            .clone()
    }

    fn log(&self, conn: u64, msg: &str) {
        if self.cfg.log {
            eprintln!("msserve: conn={conn} {msg}");
        }
    }

    /// Flips into draining mode: refuse new connections and new compute.
    fn begin_drain(&self) {
        self.stats.draining.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        let mut q = self.queue.lock().unwrap();
        q.draining = true;
        // Wake idle workers so they re-check; wake a drain waiter in
        // case the queue is already empty.
        drop(q);
        self.work_cv.notify_all();
        self.drain_cv.notify_all();
    }

    /// Blocks until every queued and executing design point settles.
    fn wait_drained(&self) {
        let mut q = self.queue.lock().unwrap();
        while !(q.items.is_empty() && q.active == 0) {
            q = self.drain_cv.wait(q).unwrap();
        }
    }

    /// Tells workers to exit once the queue is empty.
    fn stop_workers(&self) {
        self.queue.lock().unwrap().stop_workers = true;
        self.work_cv.notify_all();
    }
}

/// How a request settled, for the per-request log line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Served {
    Computed,
    CacheHit,
    Deduped,
    Failed,
}

fn worker_loop(shared: &Shared) {
    loop {
        let item = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(item) = q.items.pop_front() {
                    q.active += 1;
                    shared.stats.queue_popped();
                    break item;
                }
                if q.stop_workers {
                    return;
                }
                q = shared.work_cv.wait(q).unwrap();
            }
        };

        // The executor runs under a panic guard: a leader that panics
        // mid-compute must still resolve its flight (with a structured
        // failure), or every coalesced joiner waits forever and the
        // flight key stays leased so no later caller can ever lead it.
        let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            compute_and_store(
                &item.job,
                &item.workload,
                item.fingerprint,
                &shared.cfg.cache,
                shared.exec.as_ref(),
                0,
            )
        }));
        let outcome = match computed {
            Ok(Ok(stats)) => {
                shared.stats.computed.fetch_add(1, Ordering::Relaxed);
                Ok(JobOutcome { job: item.job.clone(), stats, cached: false })
            }
            Ok(Err(error)) => Err(JobFailure { job: item.job.clone(), error }),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".into());
                Err(JobFailure {
                    job: item.job.clone(),
                    error: format!("executor panicked: {msg}"),
                })
            }
        };
        let payload: Arc<str> = artifacts::outcome_json(&outcome).into();
        // Complete before resolving: later identical requests must start
        // a fresh flight and find the disk cache entry just stored.
        shared.board.complete(&item.key);
        item.flight.resolve(FlightOutcome::Payload(payload));

        let mut q = shared.queue.lock().unwrap();
        q.active -= 1;
        if q.items.is_empty() && q.active == 0 {
            shared.drain_cv.notify_all();
        }
    }
}

/// Settles one design point through the three layers (flight → cache →
/// queue) and returns the response payload or a rejection code.
fn serve_point(shared: &Shared, job: Job) -> (Result<Arc<str>, &'static str>, Served) {
    // Unknown workloads settle like the sweep engine settles them: a
    // deterministic failure payload, no flight, no queue slot.
    let Some((workload, fingerprint)) = shared.workload(&job.workload, job.scale) else {
        let payload =
            artifacts::outcome_json(&Err(JobFailure { job, error: "unknown workload".into() }));
        return (Ok(payload.into()), Served::Failed);
    };
    let key = job.cache_key(fingerprint);

    let flight = match shared.board.join(&key) {
        Role::Joiner(flight) => {
            shared.stats.dedup_joins.fetch_add(1, Ordering::Relaxed);
            return match flight.wait() {
                FlightOutcome::Payload(p) => (Ok(p), Served::Deduped),
                FlightOutcome::Rejected(code) => (Err(code), Served::Deduped),
            };
        }
        Role::Leader(flight) => flight,
    };

    // Leader: probe the shared disk cache before paying for compute.
    if let Some(stats) = shared.cfg.cache.load(&key) {
        shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        let payload: Arc<str> =
            artifacts::outcome_json(&Ok(JobOutcome { job, stats, cached: true })).into();
        shared.board.complete(&key);
        flight.resolve(FlightOutcome::Payload(Arc::clone(&payload)));
        return (Ok(payload), Served::CacheHit);
    }

    // Miss: ask the admission controller for a queue slot.
    {
        let mut q = shared.queue.lock().unwrap();
        let reject = if q.draining {
            Some("shutting_down")
        } else if q.items.len() >= shared.cfg.queue_depth {
            shared.stats.overloaded.fetch_add(1, Ordering::Relaxed);
            Some("overloaded")
        } else {
            None
        };
        if let Some(code) = reject {
            drop(q);
            shared.board.complete(&key);
            flight.resolve(FlightOutcome::Rejected(code));
            return (Err(code), Served::Failed);
        }
        q.items.push_back(WorkItem {
            job,
            workload,
            fingerprint,
            key,
            flight: Arc::clone(&flight),
        });
        shared.stats.queue_pushed();
        shared.work_cv.notify_one();
    }

    match flight.wait() {
        FlightOutcome::Payload(p) => (Ok(p), Served::Computed),
        FlightOutcome::Rejected(code) => (Err(code), Served::Failed),
    }
}

/// Settles a whole sweep: every point goes through the same flight /
/// cache / queue layers, misses are admitted all-or-none, and the
/// response is byte-identical to the `results.json` document `mssweep`
/// writes for the same spec.
fn serve_sweep(shared: &Shared, jobs: Vec<Job>) -> Result<String, (&'static str, String)> {
    if jobs.len() > shared.cfg.max_sweep_jobs {
        return Err((
            "bad_request",
            format!(
                "sweep expands to {} design points, limit is {}",
                jobs.len(),
                shared.cfg.max_sweep_jobs
            ),
        ));
    }

    /// How each point in the sweep will produce its fragment.
    enum Pending {
        /// Settled immediately (unknown workload or cache hit).
        Done(Arc<str>),
        /// Wait on this flight (we lead it or joined it).
        Wait(Arc<crate::flight::Flight>),
    }

    let total = jobs.len();
    let mut pending: Vec<Pending> = Vec::with_capacity(total);
    // Flights this sweep leads but has not yet enqueued; admitted
    // all-or-none below so a half-admitted sweep never deadlocks
    // against the queue bound.
    let mut misses: Vec<WorkItem> = Vec::new();

    for job in jobs {
        let Some((workload, fingerprint)) = shared.workload(&job.workload, job.scale) else {
            let frag =
                artifacts::outcome_json(&Err(JobFailure { job, error: "unknown workload".into() }));
            pending.push(Pending::Done(frag.into()));
            continue;
        };
        let key = job.cache_key(fingerprint);
        match shared.board.join(&key) {
            Role::Joiner(flight) => {
                shared.stats.dedup_joins.fetch_add(1, Ordering::Relaxed);
                pending.push(Pending::Wait(flight));
            }
            Role::Leader(flight) => {
                if let Some(stats) = shared.cfg.cache.load(&key) {
                    shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    let payload: Arc<str> =
                        artifacts::outcome_json(&Ok(JobOutcome { job, stats, cached: true }))
                            .into();
                    shared.board.complete(&key);
                    flight.resolve(FlightOutcome::Payload(Arc::clone(&payload)));
                    pending.push(Pending::Done(payload));
                } else {
                    pending.push(Pending::Wait(Arc::clone(&flight)));
                    misses.push(WorkItem { job, workload, fingerprint, key, flight });
                }
            }
        }
    }

    // Admit every miss or none: rejecting the whole sweep beats
    // deadlocking on a queue that can never fit the remainder.
    if !misses.is_empty() {
        let mut q = shared.queue.lock().unwrap();
        let reject = if q.draining {
            Some("shutting_down")
        } else if q.items.len() + misses.len() > shared.cfg.queue_depth {
            shared.stats.overloaded.fetch_add(1, Ordering::Relaxed);
            Some("overloaded")
        } else {
            None
        };
        if let Some(code) = reject {
            drop(q);
            for item in misses {
                shared.board.complete(&item.key);
                item.flight.resolve(FlightOutcome::Rejected(code));
            }
            let detail = match code {
                "overloaded" => "compute queue cannot admit the sweep".to_string(),
                _ => "daemon is draining".to_string(),
            };
            // The points this sweep joined (rather than led) still
            // settle on their own; only this response is refused.
            for p in pending {
                if let Pending::Wait(f) = p {
                    // Do not block the error response on other leaders'
                    // flights; drop the handles.
                    drop(f);
                }
            }
            return Err((code, detail));
        }
        for item in misses {
            q.items.push_back(item);
            shared.stats.queue_pushed();
        }
        drop(q);
        shared.work_cv.notify_all();
    }

    let mut fragments: Vec<Arc<str>> = Vec::with_capacity(total);
    for p in pending {
        match p {
            Pending::Done(frag) => fragments.push(frag),
            Pending::Wait(flight) => match flight.wait() {
                FlightOutcome::Payload(frag) => fragments.push(frag),
                FlightOutcome::Rejected(code) => {
                    return Err((code, "a design point in this sweep was refused".into()))
                }
            },
        }
    }
    Ok(artifacts::results_envelope(total, fragments.iter().map(|f| f.as_ref())))
}

/// Reads `\n`-terminated lines from a stream whose read timeout is
/// [`POLL`], surfacing timeouts so the caller can check the stop flag.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Bytes of `buf` that are valid.
    len: usize,
    /// Start of the unconsumed region.
    pos: usize,
}

enum ReadLine {
    Line(String),
    TimedOut,
    Eof,
}

impl LineReader {
    fn new(stream: TcpStream) -> LineReader {
        LineReader { stream, buf: vec![0; 64 * 1024], len: 0, pos: 0 }
    }

    fn read_line(&mut self) -> std::io::Result<ReadLine> {
        loop {
            if let Some(nl) = self.buf[self.pos..self.len].iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&self.buf[self.pos..self.pos + nl]).into_owned();
                self.pos += nl + 1;
                return Ok(ReadLine::Line(line));
            }
            // Compact the consumed prefix, grow if a line exceeds the buffer.
            self.buf.copy_within(self.pos..self.len, 0);
            self.len -= self.pos;
            self.pos = 0;
            if self.len == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, 0);
            }
            match self.stream.read(&mut self.buf[self.len..]) {
                Ok(0) => return Ok(ReadLine::Eof),
                Ok(n) => self.len += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(ReadLine::TimedOut)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream, conn: u64) {
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    if writer
        .write_all(protocol::hello_line(shared.workers, shared.cfg.queue_depth).as_bytes())
        .is_err()
    {
        return;
    }
    shared.log(conn, &format!("peer={peer} connected"));

    let idle_limit =
        (shared.cfg.idle_timeout_ms > 0).then(|| Duration::from_millis(shared.cfg.idle_timeout_ms));
    let mut last_line = std::time::Instant::now();
    let mut reader = LineReader::new(stream);
    loop {
        let line = match reader.read_line() {
            Ok(ReadLine::Line(line)) => {
                last_line = std::time::Instant::now();
                line
            }
            Ok(ReadLine::TimedOut) => {
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(limit) = idle_limit {
                    if last_line.elapsed() >= limit {
                        // Structured goodbye: clients distinguish idle
                        // eviction from a daemon crash or network drop.
                        shared.log(conn, "outcome=idle_timeout");
                        let _ = writer.write_all(
                            protocol::error_line(
                                0,
                                "timeout",
                                None,
                                &format!(
                                    "idle for longer than {}ms; reconnect to continue",
                                    shared.cfg.idle_timeout_ms
                                ),
                            )
                            .as_bytes(),
                        );
                        break;
                    }
                }
                continue;
            }
            Ok(ReadLine::Eof) | Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }

        let Envelope { id, req } = match protocol::parse_request(&line) {
            Ok(e) => e,
            Err(detail) => {
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                shared.log(conn, &format!("op=? outcome=bad_request detail={detail:?}"));
                if writer
                    .write_all(protocol::error_line(0, "bad_request", None, &detail).as_bytes())
                    .is_err()
                {
                    break;
                }
                continue;
            }
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);

        let response = match req {
            Request::Ping => {
                shared.log(conn, &format!("op=ping id={id}"));
                protocol::pong_line(id)
            }
            Request::Stats => {
                shared.log(conn, &format!("op=stats id={id}"));
                protocol::stats_line(id, &shared.stats.snapshot(shared.workers).to_json())
            }
            Request::Run(run) => {
                let job = run.job();
                let started = std::time::Instant::now();
                let (result, served) = serve_point(shared, job.clone());
                shared.log(
                    conn,
                    &format!(
                        "op=run id={id} job={} outcome={served:?} us={}",
                        job.id(),
                        started.elapsed().as_micros()
                    ),
                );
                match result {
                    Ok(payload) => protocol::result_line(id, &payload),
                    Err(code) => protocol::error_line(
                        id,
                        code,
                        (code == "overloaded").then_some(RETRY_AFTER_MS),
                        &format!("cannot run {} now", job.id()),
                    ),
                }
            }
            Request::Sweep(sweep) => {
                let jobs = sweep.spec().expand();
                let points = jobs.len();
                let started = std::time::Instant::now();
                let result = serve_sweep(shared, jobs);
                shared.log(
                    conn,
                    &format!(
                        "op=sweep id={id} points={points} ok={} us={}",
                        result.is_ok(),
                        started.elapsed().as_micros()
                    ),
                );
                match result {
                    Ok(payload) => protocol::sweep_result_line(id, &payload),
                    Err((code, detail)) => protocol::error_line(
                        id,
                        code,
                        (code == "overloaded").then_some(RETRY_AFTER_MS),
                        &detail,
                    ),
                }
            }
            Request::Shutdown => {
                shared.log(conn, &format!("op=shutdown id={id} draining"));
                shared.begin_drain();
                shared.wait_drained();
                shared.stop_workers();
                shared.log(conn, &format!("op=shutdown id={id} drained"));
                let _ = writer.write_all(protocol::bye_line(id).as_bytes());
                break;
            }
        };
        if writer.write_all(response.as_bytes()).is_err() {
            break;
        }
    }
    shared.log(conn, "closed");
}

/// The daemon. Construct with [`Server::start`]; interact through the
/// returned [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `cfg.addr`, spawns the worker pool and the acceptor, and
    /// returns a handle. Every cache-missed design point executes on
    /// `exec` (tests interpose counting or gated executors here;
    /// `msserve` passes [`ms_sweep::InProcessExecutor`]).
    ///
    /// # Errors
    /// Returns the bind error if the address is unusable.
    pub fn start(cfg: ServerConfig, exec: Arc<dyn Executor>) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let workers = cfg.worker_count();
        let shared = Arc::new(Shared {
            cfg,
            exec,
            stats: ServeStats::new(),
            board: FlightBoard::new(),
            queue: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            drain_cv: Condvar::new(),
            workloads: Mutex::new(WorkloadTable::new()),
            stop: AtomicBool::new(false),
            workers,
        });

        let mut worker_threads = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            worker_threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }

        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || {
                let mut next_conn = 0u64;
                loop {
                    if shared.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let conn = next_conn;
                            next_conn += 1;
                            let shared = Arc::clone(&shared);
                            let handle = std::thread::Builder::new()
                                .stack_size(256 * 1024)
                                .spawn(move || handle_connection(&shared, stream, conn))
                                .expect("spawn connection thread");
                            connections.lock().unwrap().push(handle);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
                // Listener drops here: refused connections, bound port freed.
            })
        };

        Ok(ServerHandle { shared, addr, acceptor, worker_threads, connections })
    }
}

/// A running daemon: its address, counters, and lifecycle.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    worker_threads: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (resolved port when `addr` asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the daemon's counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot(self.shared.workers)
    }

    /// Initiates a graceful drain, exactly like the protocol `shutdown`
    /// op: stop accepting, finish queued and in-flight work, then stop.
    /// Returns once the drain completes; call [`ServerHandle::join`] to
    /// also reap every thread.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
        self.shared.wait_drained();
        self.shared.stop_workers();
    }

    /// Waits for the acceptor, every worker, and every connection thread
    /// to exit. Only returns promptly if a drain was initiated (by the
    /// protocol op or [`ServerHandle::shutdown`]).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.worker_threads {
            let _ = w.join();
        }
        let handles = std::mem::take(&mut *self.connections.lock().unwrap());
        for c in handles {
            let _ = c.join();
        }
    }
}

/// Convenience for tests and `msload`: a one-request client connection.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Response;
    use ms_sweep::InProcessExecutor;
    use std::io::BufRead as _;

    fn start(cache: SweepCache, queue_depth: usize, workers: usize) -> ServerHandle {
        let cfg = ServerConfig { cache, queue_depth, workers, ..ServerConfig::default() };
        Server::start(cfg, Arc::new(InProcessExecutor::new())).expect("bind")
    }

    fn request(addr: SocketAddr, lines: &[&str]) -> Vec<Response> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut hello = String::new();
        reader.read_line(&mut hello).unwrap();
        assert!(matches!(protocol::parse_response(&hello), Ok(Response::Hello { .. })), "{hello}");
        let mut out = Vec::new();
        for line in lines {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            out.push(protocol::parse_response(&resp).expect(&resp));
        }
        out
    }

    #[test]
    fn serves_pings_stats_and_results() {
        let server = start(SweepCache::disabled(), 8, 2);
        let addr = server.addr();
        let responses = request(
            addr,
            &[
                r#"{"op":"ping","id":1}"#,
                r#"{"op":"run","id":2,"workload":"wc","units":4}"#,
                r#"{"op":"run","id":3,"workload":"nosuch"}"#,
                r#"{"op":"stats","id":4}"#,
                "not json at all",
            ],
        );
        assert_eq!(responses[0], Response::Pong { id: 1 });
        match &responses[1] {
            Response::Result { id: 2, payload } => {
                assert!(payload.contains("\"job\":\"wc@test/ms4/w1/inorder\""), "{payload}");
                assert!(payload.contains("\"ok\":true"), "{payload}");
            }
            other => panic!("{other:?}"),
        }
        match &responses[2] {
            Response::Result { id: 3, payload } => {
                assert!(
                    payload.contains("\"ok\":false,\"error\":\"unknown workload\""),
                    "{payload}"
                );
            }
            other => panic!("{other:?}"),
        }
        match &responses[3] {
            Response::Stats { id: 4, raw } => {
                let snap = StatsSnapshot::from_json(raw).unwrap();
                assert_eq!(snap.computed, 1, "{raw}");
                assert_eq!(snap.requests, 4, "{raw}");
            }
            other => panic!("{other:?}"),
        }
        match &responses[4] {
            Response::Error { code, .. } => assert_eq!(code, "bad_request"),
            other => panic!("{other:?}"),
        }
        server.shutdown();
        server.join();
    }

    #[test]
    fn shutdown_op_answers_bye_and_drains() {
        let server = start(SweepCache::disabled(), 8, 1);
        let addr = server.addr();
        let responses = request(
            addr,
            &[r#"{"op":"run","id":1,"workload":"wc"}"#, r#"{"op":"shutdown","id":2}"#],
        );
        assert!(matches!(responses[0], Response::Result { id: 1, .. }));
        assert_eq!(responses[1], Response::Bye { id: 2 });
        server.join();
        // The listener is gone after the drain.
        assert!(
            TcpStream::connect(addr).is_err() || {
                // A connect can race the close; a subsequent read sees EOF.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
                let mut buf = [0u8; 1];
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            }
        );
    }

    #[test]
    fn sweep_responses_are_results_documents() {
        let server = start(SweepCache::disabled(), 16, 2);
        let responses = request(
            server.addr(),
            &[r#"{"op":"sweep","id":5,"workloads":["wc"],"widths":[1],"units":[4]}"#],
        );
        match &responses[0] {
            Response::SweepResult { id: 5, payload } => {
                assert!(payload.starts_with("{\"version\":1,\"total\":2,\"jobs\":["), "{payload}");
                assert!(payload.contains("\"job\":\"wc@test/scalar/w1/inorder\""), "{payload}");
                assert!(payload.contains("\"job\":\"wc@test/ms4/w1/inorder\""), "{payload}");
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
        server.join();
    }

    #[test]
    fn oversized_sweeps_are_rejected_up_front() {
        let cfg = ServerConfig { max_sweep_jobs: 3, ..ServerConfig::default() };
        let server = Server::start(cfg, Arc::new(InProcessExecutor::new())).unwrap();
        let responses = request(
            server.addr(),
            &[r#"{"op":"sweep","id":1,"workloads":["wc"],"widths":[1,2],"units":[4,8]}"#],
        );
        match &responses[0] {
            Response::Error { code, detail, .. } => {
                assert_eq!(code, "bad_request");
                assert!(detail.contains("limit is 3"), "{detail}");
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
        server.join();
    }
}
