//! The `msload` load generator for `msserve`.
//!
//! ```text
//! cargo run --release -p ms-serve --bin msload -- \
//!     [--addr HOST:PORT] [--connections N] [--requests N] [--points N] \
//!     [--seed N] [--deadline-ms MS] [--backoff-cap-ms MS] \
//!     [--out FILE] [--timing-out FILE] [--stats-out FILE] [--shutdown]
//! ```
//!
//! Opens `--connections` concurrent connections, pipelines `--requests`
//! seeded requests on each (so `connections × requests` are in flight at
//! once), digests every response, and verifies that all responses for
//! the same design point are byte-identical.
//!
//! Writes the byte-deterministic `multiscalar-load/v1` report to
//! `--out` (default stdout): identical options against a correct daemon
//! produce identical bytes, regardless of cache state, dedup, worker
//! count, or machine speed. Wall-clock measurements (throughput,
//! latency percentiles, overload retries) print to stderr and, with
//! `--timing-out`, to a separate non-deterministic artifact.
//! `--stats-out` fetches the daemon's counters after the run (CI asserts
//! dedup and cache activity from it); `--shutdown` then drains the
//! daemon.
//!
//! Overload retries back off exponentially from the server's hint with
//! deterministic seeded jitter, capped at `--backoff-cap-ms`; a request
//! that cannot settle within `--deadline-ms` (daemon wedged, network
//! gone quiet) becomes a structured failure row in the report instead
//! of hanging the run.
//!
//! Exits non-zero if any same-point responses diverged or any request
//! failed outright.

use ms_serve::load::{fetch_stats, run_load, LoadOptions};
use std::process::ExitCode;

struct Args {
    opts: LoadOptions,
    out: Option<String>,
    timing_out: Option<String>,
    stats_out: Option<String>,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: msload [--addr HOST:PORT] [--connections N] [--requests N] [--points N] \
         [--seed N] [--deadline-ms MS] [--backoff-cap-ms MS] [--out FILE] \
         [--timing-out FILE] [--stats-out FILE] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        opts: LoadOptions::default(),
        out: None,
        timing_out: None,
        stats_out: None,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        let number = |flag: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} needs a non-negative integer, got `{v}`");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => args.opts.addr = value("--addr"),
            "--connections" => {
                args.opts.connections = number("--connections", value("--connections")).max(1)
            }
            "--requests" => {
                args.opts.requests_per_conn = number("--requests", value("--requests")).max(1)
            }
            "--points" => args.opts.points = number("--points", value("--points")),
            "--seed" => args.opts.seed = number("--seed", value("--seed")) as u64,
            "--deadline-ms" => {
                args.opts.deadline_ms =
                    number("--deadline-ms", value("--deadline-ms")).max(1) as u64
            }
            "--backoff-cap-ms" => {
                args.opts.backoff_cap_ms =
                    number("--backoff-cap-ms", value("--backoff-cap-ms")).max(1) as u64
            }
            "--out" => args.out = Some(value("--out")),
            "--timing-out" => args.timing_out = Some(value("--timing-out")),
            "--stats-out" => args.stats_out = Some(value("--stats-out")),
            "--shutdown" => args.shutdown = true,
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    args
}

fn write_artifact(path: &str, contents: &str) -> bool {
    match ms_sweep::artifacts::write_atomic(std::path::Path::new(path), contents.as_bytes()) {
        Ok(()) => {
            eprintln!("msload: wrote {path}");
            true
        }
        Err(e) => {
            eprintln!("msload: cannot write {path}: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    eprintln!(
        "msload: {} connections x {} pipelined requests over {} points -> {} in flight",
        args.opts.connections,
        args.opts.requests_per_conn,
        args.opts.points,
        args.opts.connections * args.opts.requests_per_conn,
    );

    let outcome = match run_load(&args.opts) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("msload: load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "msload: {} responses, {} divergent, {} failed; {}",
        outcome.total,
        outcome.divergent,
        outcome.failed,
        outcome.timing_json(),
    );

    let mut io_ok = true;
    let report = outcome.report_json();
    match &args.out {
        Some(path) => io_ok &= write_artifact(path, &report),
        None => println!("{report}"),
    }
    if let Some(path) = &args.timing_out {
        io_ok &= write_artifact(path, &outcome.timing_json());
    }
    if let Some(path) = &args.stats_out {
        match fetch_stats(&args.opts.addr) {
            Ok(raw) => io_ok &= write_artifact(path, &raw),
            Err(e) => {
                eprintln!("msload: cannot fetch stats: {e}");
                io_ok = false;
            }
        }
    }

    if args.shutdown {
        use std::io::{BufRead as _, BufReader, Write as _};
        let drain = || -> std::io::Result<()> {
            let stream = std::net::TcpStream::connect(&args.opts.addr)?;
            let mut writer = stream.try_clone()?;
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line)?; // hello
            writer.write_all(b"{\"op\":\"shutdown\",\"id\":0}\n")?;
            line.clear();
            reader.read_line(&mut line)?; // bye (after the drain)
            eprintln!("msload: daemon drained: {}", line.trim_end());
            Ok(())
        };
        if let Err(e) = drain() {
            eprintln!("msload: shutdown failed: {e}");
            io_ok = false;
        }
    }

    if outcome.divergent > 0 || outcome.failed > 0 || !io_ok {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
