//! The `msserve` daemon: deterministic simulation-as-a-service.
//!
//! ```text
//! cargo run --release -p ms-serve --bin msserve -- \
//!     [--port N | --addr HOST:PORT] [--jobs N] [--queue-depth N] \
//!     [--cache-dir DIR] [--no-cache] [--max-sweep-jobs N] [--quiet]
//! ```
//!
//! Speaks `multiscalar-serve/v1` (see `ms_serve::protocol`): one JSON
//! request per line, one JSON response per request. Results are
//! byte-identical to the `results.json` entries `mssweep` writes for the
//! same design points, whether they were computed, served from the
//! shared cache, or coalesced onto a duplicate in-flight request.
//!
//! The cache defaults to the `mssweep` convention (`--cache-dir`, else
//! `$MS_SWEEP_CACHE`, else `.ms-sweep-cache`), so a daemon started in a
//! directory where sweeps have run answers those points without
//! simulating — and points the daemon computes warm later sweeps.
//!
//! Prints `msserve: listening on ADDR` once ready. Runs until a client
//! sends `{"op":"shutdown"}`, then drains queued and in-flight work,
//! answers everything accepted, and exits 0. Structured per-request log
//! lines go to stderr unless `--quiet`.

use ms_serve::{Server, ServerConfig};
use ms_sweep::{InProcessExecutor, SweepCache};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: msserve [--port N | --addr HOST:PORT] [--jobs N] [--queue-depth N] \
         [--cache-dir DIR] [--no-cache] [--max-sweep-jobs N] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> ServerConfig {
    let mut cfg =
        ServerConfig { addr: "127.0.0.1:7461".into(), log: true, ..ServerConfig::default() };
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        let number = |flag: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} needs a non-negative integer, got `{v}`");
                usage()
            })
        };
        match arg.as_str() {
            "--port" => cfg.addr = format!("127.0.0.1:{}", number("--port", value("--port"))),
            "--addr" => cfg.addr = value("--addr"),
            "--jobs" => cfg.workers = number("--jobs", value("--jobs")),
            "--queue-depth" => {
                cfg.queue_depth = number("--queue-depth", value("--queue-depth")).max(1)
            }
            "--max-sweep-jobs" => {
                cfg.max_sweep_jobs = number("--max-sweep-jobs", value("--max-sweep-jobs")).max(1)
            }
            "--cache-dir" => cache_dir = Some(value("--cache-dir")),
            "--no-cache" => no_cache = true,
            "--quiet" => cfg.log = false,
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    cfg.cache = if no_cache {
        SweepCache::disabled()
    } else {
        match cache_dir {
            Some(dir) => SweepCache::at(dir),
            None => SweepCache::from_env(),
        }
    };
    cfg
}

fn main() -> ExitCode {
    let cfg = parse_args();

    // Same up-front validation as mssweep: a bad cache directory is a
    // structured startup error naming the path, not a warning per job.
    if let Err(e) = cfg.cache.ensure_ready() {
        eprintln!("msserve: {e}");
        return ExitCode::FAILURE;
    }

    let handle = match Server::start(cfg.clone(), Arc::new(InProcessExecutor::new())) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("msserve: cannot listen on {}: {e}", cfg.addr);
            return ExitCode::FAILURE;
        }
    };

    let cache_note = match cfg.cache.dir() {
        Some(d) => format!("cache {}", d.display()),
        None => "cache disabled".to_string(),
    };
    println!("msserve: listening on {} ({cache_note})", handle.addr());

    // The daemon runs until a client's shutdown op drains it.
    handle.join();
    println!("msserve: drained, exiting");
    ExitCode::SUCCESS
}
