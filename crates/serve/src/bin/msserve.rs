//! The `msserve` daemon: deterministic simulation-as-a-service.
//!
//! ```text
//! cargo run --release -p ms-serve --bin msserve -- \
//!     [--port N | --addr HOST:PORT] [--jobs N] [--queue-depth N] \
//!     [--cache-dir DIR] [--no-cache] [--max-sweep-jobs N] \
//!     [--shards N] [--idle-timeout-ms MS] [--quiet]
//! ```
//!
//! Speaks `multiscalar-serve/v1` (see `ms_serve::protocol`): one JSON
//! request per line, one JSON response per request. Results are
//! byte-identical to the `results.json` entries `mssweep` writes for the
//! same design points, whether they were computed, served from the
//! shared cache, or coalesced onto a duplicate in-flight request.
//!
//! `--shards N` computes on a supervised pool of N worker *processes*
//! (`msserve --worker` children) instead of in-process threads: a
//! worker that panics, is killed, hangs, or emits garbage is restarted
//! and its job re-queued, and the bytes served are identical either
//! way. `--idle-timeout-ms MS` evicts connections that go quiet,
//! answering a structured `timeout` error line before closing.
//!
//! The cache defaults to the `mssweep` convention (`--cache-dir`, else
//! `$MS_SWEEP_CACHE`, else `.ms-sweep-cache`), so a daemon started in a
//! directory where sweeps have run answers those points without
//! simulating — and points the daemon computes warm later sweeps.
//!
//! Prints `msserve: listening on ADDR` once ready. Runs until a client
//! sends `{"op":"shutdown"}`, then drains queued and in-flight work,
//! answers everything accepted, and exits 0. Structured per-request log
//! lines go to stderr unless `--quiet`.
//!
//! The hidden `--worker` flag runs the process as a shard worker
//! speaking the line-JSON pipe protocol on stdin/stdout; it exists for
//! the supervisor to spawn and is not part of the public CLI surface.

use ms_serve::{ProcessShardExecutor, Server, ServerConfig, ShardOptions};
use ms_sweep::{Executor, InProcessExecutor, SweepCache};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: msserve [--port N | --addr HOST:PORT] [--jobs N] [--queue-depth N] \
         [--cache-dir DIR] [--no-cache] [--max-sweep-jobs N] [--shards N] \
         [--idle-timeout-ms MS] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServerConfig, usize) {
    let mut cfg =
        ServerConfig { addr: "127.0.0.1:7461".into(), log: true, ..ServerConfig::default() };
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;
    let mut shards = 0usize;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        let number = |flag: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} needs a non-negative integer, got `{v}`");
                usage()
            })
        };
        match arg.as_str() {
            "--port" => cfg.addr = format!("127.0.0.1:{}", number("--port", value("--port"))),
            "--addr" => cfg.addr = value("--addr"),
            "--jobs" => cfg.workers = number("--jobs", value("--jobs")),
            "--queue-depth" => {
                cfg.queue_depth = number("--queue-depth", value("--queue-depth")).max(1)
            }
            "--max-sweep-jobs" => {
                cfg.max_sweep_jobs = number("--max-sweep-jobs", value("--max-sweep-jobs")).max(1)
            }
            "--shards" => shards = number("--shards", value("--shards")),
            "--idle-timeout-ms" => {
                cfg.idle_timeout_ms = number("--idle-timeout-ms", value("--idle-timeout-ms")) as u64
            }
            "--cache-dir" => cache_dir = Some(value("--cache-dir")),
            "--no-cache" => no_cache = true,
            "--quiet" => cfg.log = false,
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    cfg.cache = if no_cache {
        SweepCache::disabled()
    } else {
        match cache_dir {
            Some(dir) => SweepCache::at(dir),
            None => SweepCache::from_env(),
        }
    };
    (cfg, shards)
}

fn main() -> ExitCode {
    // Worker mode is dispatched before any other flag parsing: the
    // supervisor spawns `msserve --worker` children and owns their
    // whole lifecycle over the stdin/stdout pipe.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        return ExitCode::from(ms_serve::worker_main() as u8);
    }

    let (cfg, shards) = parse_args();

    // Same up-front validation as mssweep: a bad cache directory is a
    // structured startup error naming the path, not a warning per job.
    if let Err(e) = cfg.cache.ensure_ready() {
        eprintln!("msserve: {e}");
        return ExitCode::FAILURE;
    }

    let exec: Arc<dyn Executor> = if shards > 0 {
        Arc::new(ProcessShardExecutor::start(ShardOptions {
            workers: shards,
            ..ShardOptions::default()
        }))
    } else {
        Arc::new(InProcessExecutor::new())
    };

    let handle = match Server::start(cfg.clone(), exec) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("msserve: cannot listen on {}: {e}", cfg.addr);
            return ExitCode::FAILURE;
        }
    };

    let cache_note = match cfg.cache.dir() {
        Some(d) => format!("cache {}", d.display()),
        None => "cache disabled".to_string(),
    };
    let shard_note = if shards > 0 { format!(", {shards} process shards") } else { String::new() };
    println!("msserve: listening on {} ({cache_note}{shard_note})", handle.addr());

    // The daemon runs until a client's shutdown op drains it.
    handle.join();
    println!("msserve: drained, exiting");
    ExitCode::SUCCESS
}
