//! Single-flight request coalescing.
//!
//! When N connections ask for the same design point at the same moment,
//! exactly one of them — the *leader*, the thread that inserted the
//! flight into the board — probes the cache or enqueues the compute
//! work. The other N−1 — *joiners* — block on the flight's condvar and
//! receive the same resolved payload `Arc`. Because the payload is the
//! deterministic [`ms_sweep::artifacts::outcome_json`] rendering, every
//! participant observes byte-identical bytes regardless of role.
//!
//! A flight resolves exactly once, to either a payload or a rejection
//! (the admission controller refusing the leader rejects every joiner
//! too — nobody is left waiting for work that was never queued). The
//! leader removes the flight from the board *before* resolving it, so a
//! request arriving after resolution starts a fresh flight and is
//! answered by the disk cache instead of holding completed payloads
//! alive in memory.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// How a flight settled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlightOutcome {
    /// The computation finished; the payload is the response body
    /// (an `outcome_json` rendering) shared by every participant.
    Payload(Arc<str>),
    /// The daemon refused the work (`overloaded` or `shutting_down`);
    /// every participant answers with this error code.
    Rejected(&'static str),
}

/// One in-flight computation, shared between a leader and any joiners.
#[derive(Debug, Default)]
pub struct Flight {
    outcome: Mutex<Option<FlightOutcome>>,
    settled: Condvar,
}

impl Flight {
    /// Resolves the flight, waking every joiner. Resolving twice is a
    /// logic error (the board hands out exactly one leader per flight);
    /// the first outcome wins and the second is dropped.
    pub fn resolve(&self, outcome: FlightOutcome) {
        let mut slot = self.outcome.lock().unwrap();
        if slot.is_none() {
            *slot = Some(outcome);
        }
        drop(slot);
        self.settled.notify_all();
    }

    /// Blocks until the flight resolves and returns the shared outcome.
    pub fn wait(&self) -> FlightOutcome {
        let mut slot = self.outcome.lock().unwrap();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self.settled.wait(slot).unwrap();
        }
    }
}

/// What [`FlightBoard::join`] tells a request to do.
#[derive(Debug)]
pub enum Role {
    /// This thread created the flight and must drive the computation to
    /// resolution (and remove it from the board via
    /// [`FlightBoard::complete`] before resolving).
    Leader(Arc<Flight>),
    /// An identical request is already in flight; wait on it.
    Joiner(Arc<Flight>),
}

/// The map of in-flight computations, keyed by the job's full cache key
/// (workload fingerprint + `SimConfig::stable_key` + kind + version), so
/// "identical request" means exactly "identical simulation".
#[derive(Debug, Default)]
pub struct FlightBoard {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
}

impl FlightBoard {
    /// A board with no flights.
    pub fn new() -> FlightBoard {
        FlightBoard::default()
    }

    /// Joins the flight for `key`, creating it if absent. The caller
    /// that receives [`Role::Leader`] owns resolution.
    pub fn join(&self, key: &str) -> Role {
        let mut flights = self.flights.lock().unwrap();
        if let Some(f) = flights.get(key) {
            Role::Joiner(Arc::clone(f))
        } else {
            let f = Arc::new(Flight::default());
            flights.insert(key.to_string(), Arc::clone(&f));
            Role::Leader(f)
        }
    }

    /// Removes `key` from the board. The leader calls this *before*
    /// resolving its flight: joiners already holding the `Arc` still get
    /// the outcome, while later requests start fresh (and hit the disk
    /// cache the computation just populated).
    pub fn complete(&self, key: &str) {
        self.flights.lock().unwrap().remove(key);
    }

    /// Number of distinct computations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn first_joiner_leads_the_rest_follow() {
        let board = FlightBoard::new();
        let Role::Leader(lead) = board.join("k") else { panic!("first join must lead") };
        let Role::Joiner(join) = board.join("k") else { panic!("second join must follow") };
        assert_eq!(board.in_flight(), 1);
        board.complete("k");
        lead.resolve(FlightOutcome::Payload("payload".into()));
        assert_eq!(join.wait(), FlightOutcome::Payload("payload".into()));
        assert_eq!(board.in_flight(), 0);
        // After completion the key leads again (fresh flight).
        assert!(matches!(board.join("k"), Role::Leader(_)));
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let board = FlightBoard::new();
        assert!(matches!(board.join("a"), Role::Leader(_)));
        assert!(matches!(board.join("b"), Role::Leader(_)));
        assert_eq!(board.in_flight(), 2);
    }

    #[test]
    fn rejection_reaches_every_waiter() {
        let board = Arc::new(FlightBoard::new());
        let Role::Leader(lead) = board.join("k") else { panic!() };
        let rejected = Arc::new(AtomicUsize::new(0));
        let joined = Arc::new(AtomicUsize::new(0));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let (board, rejected, joined) =
                    (Arc::clone(&board), Arc::clone(&rejected), Arc::clone(&joined));
                std::thread::spawn(move || {
                    let flight = match board.join("k") {
                        Role::Joiner(f) => f,
                        Role::Leader(_) => panic!("leader already exists"),
                    };
                    joined.fetch_add(1, Ordering::Relaxed);
                    if flight.wait() == FlightOutcome::Rejected("overloaded") {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        // Resolving before a join would hand a later thread leadership
        // of a fresh flight; wait until everyone is aboard.
        while joined.load(Ordering::Relaxed) < 4 {
            std::thread::yield_now();
        }
        board.complete("k");
        lead.resolve(FlightOutcome::Rejected("overloaded"));
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(rejected.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn wait_after_resolve_returns_immediately() {
        let f = Flight::default();
        f.resolve(FlightOutcome::Payload("x".into()));
        assert_eq!(f.wait(), FlightOutcome::Payload("x".into()));
        // A second resolve is ignored; the first outcome sticks.
        f.resolve(FlightOutcome::Rejected("overloaded"));
        assert_eq!(f.wait(), FlightOutcome::Payload("x".into()));
    }
}
