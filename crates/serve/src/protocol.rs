//! The `multiscalar-serve/v1` wire protocol.
//!
//! One JSON object per line, both directions. The daemon greets each
//! connection with a `hello` line, then answers every request line with
//! exactly one response line, in request order.
//!
//! ## Requests
//!
//! ```json
//! {"op":"run","id":1,"workload":"wc","scale":"test","kind":"multiscalar","units":4,"width":1,"ooo":false}
//! {"op":"sweep","id":2,"workloads":["wc","cmp"],"scale":"test","widths":[1],"order":"inorder","units":[4],"scalar":true}
//! {"op":"stats","id":3}
//! {"op":"ping","id":4}
//! {"op":"shutdown","id":5}
//! ```
//!
//! `id` is an opaque client token echoed in the response (default 0).
//! `run` defaults: scale `test`, kind `multiscalar`, units 4, width 1,
//! `ooo` false. `sweep` mirrors `mssweep`'s axes; `workloads: []` (the
//! default) means the full ten-benchmark suite, and `scalar` (default
//! true) includes the scalar baseline at each (width, order) point. An
//! optional `"proto"` field is verified against the protocol version if
//! present.
//!
//! ## Responses
//!
//! ```json
//! {"proto":"multiscalar-serve/v1","type":"hello","workers":4,"queue_depth":256}
//! {"proto":"multiscalar-serve/v1","type":"result","id":1,"result":{...}}
//! {"proto":"multiscalar-serve/v1","type":"sweep_result","id":2,"results":{...}}
//! {"proto":"multiscalar-serve/v1","type":"error","id":1,"code":"overloaded","retry_after_ms":100,"detail":"..."}
//! {"proto":"multiscalar-serve/v1","type":"stats","id":3,"stats":{...}}
//! {"proto":"multiscalar-serve/v1","type":"pong","id":4}
//! {"proto":"multiscalar-serve/v1","type":"bye","id":5}
//! ```
//!
//! The `result` payload is byte-for-byte the object
//! [`ms_sweep::artifacts::outcome_json`] renders — i.e. exactly one
//! entry of `mssweep`'s `results.json` `jobs` array — and the
//! `sweep_result` payload is byte-for-byte
//! [`ms_sweep::artifacts::results_envelope`] — i.e. exactly a
//! `results.json` document. Determinism checks rely on this: a served
//! response can be byte-compared against the artifact a cold `mssweep`
//! writes for the same design point. Error codes are `bad_request`,
//! `overloaded` (with a `retry_after_ms` hint), `shutting_down`, and
//! `timeout` (sent with id 0 when an idle connection is evicted).

use ms_sweep::{Job, JobKind, SweepSpec};
use ms_trace::json;
use ms_trace::jsonv::{self, JsonValue};
use ms_workloads::Scale;
use multiscalar::SimConfig;

/// Protocol identifier, stamped into every response line.
pub const PROTO: &str = "multiscalar-serve/v1";

/// A parsed request line: the client's echo token plus the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Client-chosen token echoed in the response (default 0).
    pub id: u64,
    /// The requested operation.
    pub req: Request,
}

/// The operations a client can request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run one design point.
    Run(RunRequest),
    /// Run a full sweep.
    Sweep(SweepRequest),
    /// Report the daemon's counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain queued and in-flight work, then exit.
    Shutdown,
}

/// One design point: workload × scale × simulator configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRequest {
    /// Workload name (case-insensitive, as `ms_workloads::by_name`).
    pub workload: String,
    /// Input scale.
    pub scale: Scale,
    /// Scalar baseline or multiscalar.
    pub kind: JobKind,
    /// Processing units (must be 1 for the scalar baseline).
    pub units: usize,
    /// Per-unit issue width (1 or 2).
    pub width: usize,
    /// Out-of-order issue within each unit.
    pub ooo: bool,
    /// Optional `ms_cfg::PartitionPolicy` stable key: auto-partition the
    /// workload (strip hand annotations, re-derive tasks) before
    /// simulating. Multiscalar only.
    pub partition: Option<String>,
}

impl RunRequest {
    /// The [`Job`] this request describes (same construction as
    /// [`SweepSpec::expand`], so cache keys and artifact bytes line up).
    pub fn job(&self) -> Job {
        let cfg = match self.kind {
            JobKind::Scalar => SimConfig::scalar(),
            JobKind::Multiscalar => SimConfig::multiscalar(self.units),
        };
        Job {
            workload: self.workload.clone(),
            scale: self.scale,
            kind: self.kind,
            cfg: cfg.issue(self.width).out_of_order(self.ooo),
            partition: self.partition.clone(),
        }
    }
}

/// A sweep request, mirroring `mssweep`'s axes.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRequest {
    /// Workload names; empty means the full suite.
    pub workloads: Vec<String>,
    /// Input scale for every point.
    pub scale: Scale,
    /// Issue widths.
    pub widths: Vec<usize>,
    /// Issue orders (`false` = in-order).
    pub orders: Vec<bool>,
    /// Multiscalar unit counts.
    pub units: Vec<usize>,
    /// Include the scalar baseline at each (width, order) point.
    pub include_scalar: bool,
}

impl SweepRequest {
    /// The [`SweepSpec`] this request describes.
    pub fn spec(&self) -> SweepSpec {
        SweepSpec {
            workloads: self.workloads.clone(),
            scale: self.scale,
            widths: self.widths.clone(),
            orders: self.orders.clone(),
            unit_counts: self.units.clone(),
            include_scalar: self.include_scalar,
            partitions: Vec::new(),
        }
    }
}

fn parse_scale(v: Option<&JsonValue>) -> Result<Scale, String> {
    match v {
        None => Ok(Scale::Test),
        Some(s) => {
            let s = s.as_str().ok_or("`scale` must be a string")?;
            Scale::parse(s).ok_or_else(|| format!("unknown scale `{s}` (use test|full)"))
        }
    }
}

fn parse_width(w: u64) -> Result<usize, String> {
    if w == 1 || w == 2 {
        Ok(w as usize)
    } else {
        Err(format!("width must be 1 or 2, got {w}"))
    }
}

fn parse_units(u: u64) -> Result<usize, String> {
    if (1..=64).contains(&u) {
        Ok(u as usize)
    } else {
        Err(format!("units must be in 1..=64, got {u}"))
    }
}

fn parse_run(doc: &JsonValue) -> Result<RunRequest, String> {
    let workload = doc
        .get("workload")
        .and_then(JsonValue::as_str)
        .ok_or("run needs a `workload` string")?
        .to_string();
    let scale = parse_scale(doc.get("scale"))?;
    let kind = match doc.get("kind") {
        None => JobKind::Multiscalar,
        Some(k) => match k.as_str() {
            Some("multiscalar") => JobKind::Multiscalar,
            Some("scalar") => JobKind::Scalar,
            _ => return Err("`kind` must be `scalar` or `multiscalar`".into()),
        },
    };
    let units = match doc.get("units") {
        None => match kind {
            JobKind::Scalar => 1,
            JobKind::Multiscalar => 4,
        },
        Some(u) => parse_units(u.as_u64().ok_or("`units` must be a non-negative integer")?)?,
    };
    if kind == JobKind::Scalar && units != 1 {
        return Err(format!("scalar baseline has exactly 1 unit, got units={units}"));
    }
    let width = match doc.get("width") {
        None => 1,
        Some(w) => parse_width(w.as_u64().ok_or("`width` must be a non-negative integer")?)?,
    };
    let ooo = match doc.get("ooo") {
        None => false,
        Some(b) => b.as_bool().ok_or("`ooo` must be a boolean")?,
    };
    let partition = match doc.get("partition") {
        None => None,
        Some(p) => Some(p.as_str().ok_or("`partition` must be a string")?.to_string()),
    };
    if partition.is_some() && kind == JobKind::Scalar {
        return Err("`partition` applies only to multiscalar runs".into());
    }
    Ok(RunRequest { workload, scale, kind, units, width, ooo, partition })
}

fn parse_sweep(doc: &JsonValue) -> Result<SweepRequest, String> {
    let workloads = match doc.get("workloads") {
        None => Vec::new(),
        Some(v) => v
            .as_arr()
            .ok_or("`workloads` must be an array of strings")?
            .iter()
            .map(|w| w.as_str().map(str::to_string).ok_or("`workloads` must contain strings"))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let scale = parse_scale(doc.get("scale"))?;
    let num_list = |key: &str, default: &[u64]| -> Result<Vec<u64>, String> {
        match doc.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => {
                let items = v.as_arr().ok_or_else(|| format!("`{key}` must be an array"))?;
                if items.is_empty() {
                    return Err(format!("`{key}` must not be empty"));
                }
                items
                    .iter()
                    .map(|n| n.as_u64().ok_or_else(|| format!("`{key}` must contain integers")))
                    .collect()
            }
        }
    };
    let widths =
        num_list("widths", &[1])?.into_iter().map(parse_width).collect::<Result<Vec<_>, _>>()?;
    let units =
        num_list("units", &[4])?.into_iter().map(parse_units).collect::<Result<Vec<_>, _>>()?;
    let orders = match doc.get("order") {
        None => vec![false],
        Some(o) => match o.as_str() {
            Some("inorder") => vec![false],
            Some("ooo") => vec![true],
            Some("both") => vec![false, true],
            _ => return Err("`order` must be inorder|ooo|both".into()),
        },
    };
    let include_scalar = match doc.get("scalar") {
        None => true,
        Some(b) => b.as_bool().ok_or("`scalar` must be a boolean")?,
    };
    Ok(SweepRequest { workloads, scale, widths, orders, units, include_scalar })
}

/// Parses one request line.
///
/// # Errors
/// Returns a human-readable description of the first problem (malformed
/// JSON, wrong protocol version, unknown op, invalid field). The caller
/// answers with a `bad_request` error line.
pub fn parse_request(line: &str) -> Result<Envelope, String> {
    let doc = jsonv::parse(line.trim_end())?;
    if let Some(proto) = doc.get("proto") {
        let p = proto.as_str().unwrap_or("<not a string>");
        if p != PROTO {
            return Err(format!("protocol mismatch: `{p}`, this daemon speaks `{PROTO}`"));
        }
    }
    let id = match doc.get("id") {
        None => 0,
        Some(v) => v.as_u64().ok_or("`id` must be a non-negative integer")?,
    };
    let op = doc.get("op").and_then(JsonValue::as_str).ok_or("request needs an `op` string")?;
    let req = match op {
        "run" => Request::Run(parse_run(&doc)?),
        "sweep" => Request::Sweep(parse_sweep(&doc)?),
        "stats" => Request::Stats,
        "ping" => Request::Ping,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown op `{other}`")),
    };
    Ok(Envelope { id, req })
}

// ---------------------------------------------------------------------
// Response rendering (server side) and parsing (client side).
// ---------------------------------------------------------------------

/// The greeting the daemon writes when a connection opens.
pub fn hello_line(workers: usize, queue_depth: usize) -> String {
    format!(
        "{{\"proto\":{},\"type\":\"hello\",\"workers\":{workers},\"queue_depth\":{queue_depth}}}\n",
        json::string(PROTO)
    )
}

/// A single-point result response. `payload` must be an
/// [`ms_sweep::artifacts::outcome_json`] rendering.
pub fn result_line(id: u64, payload: &str) -> String {
    format!(
        "{{\"proto\":{},\"type\":\"result\",\"id\":{id},\"result\":{payload}}}\n",
        json::string(PROTO)
    )
}

/// A sweep result response. `payload` must be an
/// [`ms_sweep::artifacts::results_envelope`] rendering.
pub fn sweep_result_line(id: u64, payload: &str) -> String {
    format!(
        "{{\"proto\":{},\"type\":\"sweep_result\",\"id\":{id},\"results\":{payload}}}\n",
        json::string(PROTO)
    )
}

/// An error response; `retry_after_ms` is present for `overloaded`.
pub fn error_line(id: u64, code: &str, retry_after_ms: Option<u64>, detail: &str) -> String {
    let retry = match retry_after_ms {
        Some(ms) => format!(",\"retry_after_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{\"proto\":{},\"type\":\"error\",\"id\":{id},\"code\":{}{retry},\"detail\":{}}}\n",
        json::string(PROTO),
        json::string(code),
        json::string(detail)
    )
}

/// A stats response; `stats` must be a JSON object rendering.
pub fn stats_line(id: u64, stats: &str) -> String {
    format!(
        "{{\"proto\":{},\"type\":\"stats\",\"id\":{id},\"stats\":{stats}}}\n",
        json::string(PROTO)
    )
}

/// The liveness reply.
pub fn pong_line(id: u64) -> String {
    format!("{{\"proto\":{},\"type\":\"pong\",\"id\":{id}}}\n", json::string(PROTO))
}

/// The shutdown acknowledgement, written after the drain completes.
pub fn bye_line(id: u64) -> String {
    format!("{{\"proto\":{},\"type\":\"bye\",\"id\":{id}}}\n", json::string(PROTO))
}

/// A parsed response line, from the client's point of view.
///
/// `Result`/`SweepResult` carry the *raw payload bytes* sliced out of
/// the line (not a re-rendering), so clients can digest and
/// byte-compare them against `mssweep` artifacts.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The connection greeting.
    Hello {
        /// Worker-pool size the daemon reported.
        workers: u64,
        /// Compute-queue bound the daemon reported.
        queue_depth: u64,
    },
    /// A single-point result; `payload` is the raw outcome object.
    Result {
        /// Echoed request token.
        id: u64,
        /// Raw `outcome_json` bytes.
        payload: String,
    },
    /// A sweep result; `payload` is the raw results document.
    SweepResult {
        /// Echoed request token.
        id: u64,
        /// Raw `results_envelope` bytes.
        payload: String,
    },
    /// An error.
    Error {
        /// Echoed request token.
        id: u64,
        /// Error code (`bad_request`, `overloaded`, `shutting_down`,
        /// `timeout`).
        code: String,
        /// Backoff hint, present on `overloaded`.
        retry_after_ms: Option<u64>,
        /// Human-readable detail.
        detail: String,
    },
    /// A stats report; `raw` is the stats object as written.
    Stats {
        /// Echoed request token.
        id: u64,
        /// Raw stats object bytes.
        raw: String,
    },
    /// The liveness reply.
    Pong {
        /// Echoed request token.
        id: u64,
    },
    /// The shutdown acknowledgement.
    Bye {
        /// Echoed request token.
        id: u64,
    },
}

/// Slices the raw bytes of the final `"<field>":<payload>` object out of
/// a response line. Sound because the envelope writes the payload last
/// and every earlier field is a fixed token or a number.
fn raw_tail<'a>(line: &'a str, field: &str) -> Result<&'a str, String> {
    let marker = format!(",\"{field}\":");
    let at = line.find(&marker).ok_or_else(|| format!("response has no `{field}`"))?;
    let rest = line[at + marker.len()..].trim_end();
    rest.strip_suffix('}').ok_or_else(|| "unterminated response envelope".to_string())
}

/// Parses one response line (client side).
///
/// # Errors
/// Returns a description of the first structural problem, including a
/// protocol-version mismatch.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let doc = jsonv::parse(line.trim_end())?;
    let proto = doc.get("proto").and_then(JsonValue::as_str).unwrap_or("<missing>");
    if proto != PROTO {
        return Err(format!("protocol mismatch: `{proto}`, this client speaks `{PROTO}`"));
    }
    let ty = doc.get("type").and_then(JsonValue::as_str).ok_or("response has no `type`")?;
    let id = doc.get("id").and_then(JsonValue::as_u64).unwrap_or(0);
    match ty {
        "hello" => Ok(Response::Hello {
            workers: doc.get("workers").and_then(JsonValue::as_u64).unwrap_or(0),
            queue_depth: doc.get("queue_depth").and_then(JsonValue::as_u64).unwrap_or(0),
        }),
        "result" => Ok(Response::Result { id, payload: raw_tail(line, "result")?.to_string() }),
        "sweep_result" => {
            Ok(Response::SweepResult { id, payload: raw_tail(line, "results")?.to_string() })
        }
        "stats" => Ok(Response::Stats { id, raw: raw_tail(line, "stats")?.to_string() }),
        "error" => Ok(Response::Error {
            id,
            code: doc
                .get("code")
                .and_then(JsonValue::as_str)
                .ok_or("error response has no `code`")?
                .to_string(),
            retry_after_ms: doc.get("retry_after_ms").and_then(JsonValue::as_u64),
            detail: doc.get("detail").and_then(JsonValue::as_str).unwrap_or("").to_string(),
        }),
        "pong" => Ok(Response::Pong { id }),
        "bye" => Ok(Response::Bye { id }),
        other => Err(format!("unknown response type `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_requests_parse_with_defaults() {
        let e = parse_request(r#"{"op":"run","workload":"wc"}"#).unwrap();
        assert_eq!(e.id, 0);
        let Request::Run(r) = &e.req else { panic!("{e:?}") };
        assert_eq!(r.workload, "wc");
        assert_eq!(r.scale, Scale::Test);
        assert_eq!(r.kind, JobKind::Multiscalar);
        assert_eq!((r.units, r.width, r.ooo), (4, 1, false));
        assert_eq!(r.job().id(), "wc@test/ms4/w1/inorder");
    }

    #[test]
    fn run_requests_parse_explicit_fields() {
        let e = parse_request(
            r#"{"op":"run","id":7,"workload":"Cmp","scale":"full","kind":"multiscalar","units":8,"width":2,"ooo":true}"#,
        )
        .unwrap();
        assert_eq!(e.id, 7);
        let Request::Run(r) = &e.req else { panic!("{e:?}") };
        assert_eq!(r.job().id(), "cmp@full/ms8/w2/ooo");
    }

    #[test]
    fn scalar_run_requests_pin_units_to_one() {
        let e = parse_request(r#"{"op":"run","workload":"wc","kind":"scalar"}"#).unwrap();
        let Request::Run(r) = &e.req else { panic!("{e:?}") };
        assert_eq!(r.units, 1);
        assert_eq!(r.job().id(), "wc@test/scalar/w1/inorder");
        let err = parse_request(r#"{"op":"run","workload":"wc","kind":"scalar","units":4}"#);
        assert!(err.is_err(), "{err:?}");
    }

    #[test]
    fn invalid_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("{", "at byte"),
            (r#"{"op":"run"}"#, "workload"),
            (r#"{"op":"run","workload":"wc","width":3}"#, "width"),
            (r#"{"op":"run","workload":"wc","units":0}"#, "units"),
            (r#"{"op":"run","workload":"wc","units":65}"#, "units"),
            (r#"{"op":"run","workload":"wc","scale":"huge"}"#, "scale"),
            (r#"{"op":"teleport"}"#, "unknown op"),
            (r#"{"op":"run","workload":"wc","proto":"multiscalar-serve/v0"}"#, "mismatch"),
            (r#"{"op":"sweep","widths":[]}"#, "widths"),
            (r#"{"op":"sweep","order":"sideways"}"#, "order"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "`{line}` -> `{err}` (wanted `{needle}`)");
        }
    }

    #[test]
    fn sweep_requests_expand_like_mssweep() {
        let e = parse_request(
            r#"{"op":"sweep","id":3,"workloads":["wc","cmp"],"widths":[1],"units":[4],"order":"inorder"}"#,
        )
        .unwrap();
        let Request::Sweep(s) = &e.req else { panic!("{e:?}") };
        let jobs = s.spec().expand();
        assert_eq!(jobs.len(), 4); // 2 workloads x (scalar + ms4)
        assert_eq!(jobs[0].id(), "wc@test/scalar/w1/inorder");
        assert_eq!(jobs[3].id(), "cmp@test/ms4/w1/inorder");
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"stats","id":9}"#).unwrap().req, Request::Stats);
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap().req, Request::Ping);
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#).unwrap().req, Request::Shutdown);
    }

    #[test]
    fn response_lines_round_trip_with_raw_payloads() {
        let payload = r#"{"job":"wc@test/ms4/w1/inorder","ok":true,"stats":{"cycles":10}}"#;
        let line = result_line(42, payload);
        match parse_response(&line).unwrap() {
            Response::Result { id, payload: p } => {
                assert_eq!(id, 42);
                assert_eq!(p, payload, "payload bytes survive untouched");
            }
            other => panic!("{other:?}"),
        }

        let line = error_line(7, "overloaded", Some(100), "queue full (depth 8)");
        match parse_response(&line).unwrap() {
            Response::Error { id, code, retry_after_ms, detail } => {
                assert_eq!((id, code.as_str(), retry_after_ms), (7, "overloaded", Some(100)));
                assert!(detail.contains("queue full"));
            }
            other => panic!("{other:?}"),
        }

        match parse_response(&hello_line(4, 256)).unwrap() {
            Response::Hello { workers, queue_depth } => {
                assert_eq!((workers, queue_depth), (4, 256));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_response(&pong_line(1)).unwrap(), Response::Pong { id: 1 });
        assert_eq!(parse_response(&bye_line(2)).unwrap(), Response::Bye { id: 2 });
    }

    #[test]
    fn responses_from_other_protocols_are_rejected() {
        assert!(parse_response(r#"{"proto":"other/v9","type":"pong","id":1}"#).is_err());
        assert!(parse_response("not json").is_err());
    }
}
