//! # ms-serve — deterministic simulation-as-a-service
//!
//! The paper's premise is throughput from parallel units behind a
//! sequential-appearing interface; this crate applies the same shape at
//! the systems layer. A long-running daemon (`msserve`) accepts
//! experiment requests — one workload × [`multiscalar::SimConfig`] ×
//! scale design point, or a whole sweep — over a versioned
//! line-delimited JSON protocol ([`protocol`], `multiscalar-serve/v1`),
//! shards them across a worker pool, and answers with exactly the bytes
//! `mssweep` would put in its `results.json` artifact for the same
//! point.
//!
//! Three layers keep the service cheap under duplicate-heavy traffic:
//!
//! 1. **Single-flight dedup** ([`flight`]) — concurrent identical
//!    requests coalesce onto one in-flight computation; every waiter
//!    gets the same payload `Arc`.
//! 2. **The checksummed sweep cache** ([`ms_sweep::SweepCache`]) — a
//!    request whose design point was ever computed (by this daemon *or*
//!    by `mssweep`, they share the key space) is answered from disk
//!    without simulating.
//! 3. **Admission control** ([`server`]) — a bounded compute queue;
//!    when it is full the daemon answers `overloaded` with a
//!    retry-after hint instead of queueing unboundedly, and a graceful
//!    shutdown drains queued and in-flight work before closing.
//!
//! Because simulation results are deterministic and responses carry
//! self-validating identity (workload fingerprint +
//! `SimConfig::stable_key` + FNV checksum, via the cache key), a
//! response is byte-identical no matter which layer produced it — the
//! property the `msload` load generator ([`load`]) asserts at thousands
//! of concurrent requests, and CI byte-compares against a cold
//! `mssweep` run.
//!
//! Workers execute through the [`ms_sweep::Executor`] trait, so the
//! daemon and `mssweep` run the same engine — and tests can interpose
//! counting or blocking executors to pin down dedup and backpressure
//! semantics precisely.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod flight;
pub mod load;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod stats;
pub mod supervise;
pub mod worker;

pub use flight::{Flight, FlightBoard, FlightOutcome};
pub use load::{run_load, LoadOptions, LoadOutcome};
pub use protocol::{Envelope, Request, RunRequest, SweepRequest, PROTO};
pub use server::{Server, ServerConfig, ServerHandle};
pub use shard::ProcessShardExecutor;
pub use stats::{ServeStats, StatsSnapshot};
pub use supervise::{PoisonJob, ShardOptions, ShardStats, Supervisor};
pub use worker::worker_main;
