//! The `msload` load generator: deterministic traffic, divergence
//! detection, and a reproducible report.
//!
//! Traffic is derived entirely from a seed: each connection runs a
//! linear-congruential generator that picks design points from a small
//! space ([`LoadOptions::points`] distinct jobs over the workload suite
//! × unit counts), so two runs with the same options issue the *same
//! multiset of requests* — the precondition for a byte-identical
//! report. Every connection pipelines its whole batch (writes all
//! requests, then reads all responses), so the number of concurrently
//! in-flight requests is `connections × requests_per_conn`.
//!
//! For every point the generator folds each response payload into an
//! FNV-1a digest and counts **divergence**: two responses for the same
//! design point with different bytes. A correct daemon never diverges —
//! the payload is the deterministic `outcome_json` rendering whether it
//! was computed, cached, or deduplicated — so the report's `divergent`
//! field doubles as an end-to-end determinism check at load.
//!
//! The deterministic report ([`LoadOutcome::report_json`],
//! `multiscalar-load/v1`) contains only schedule-derived and simulated
//! content. Wall-clock measurements (throughput, latency percentiles)
//! and operational noise (overload retries) are real but
//! non-reproducible, so they are reported separately
//! ([`LoadOutcome::timing_json`]) and never mixed into the
//! deterministic artifact.

use crate::protocol::{self, Response};
use ms_sweep::{Job, JobKind};
use ms_workloads::{suite, Scale};
use multiscalar::SimConfig;
use std::fmt::Write as _;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Unit counts the point space cycles through (all valid multiscalar
/// configurations, cheap at `test` scale).
const UNIT_AXIS: [usize; 3] = [2, 4, 8];

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Daemon address, e.g. `127.0.0.1:7461`.
    pub addr: String,
    /// Concurrent connections (one thread each).
    pub connections: usize,
    /// Requests pipelined per connection.
    pub requests_per_conn: usize,
    /// Distinct design points the traffic draws from. Small values make
    /// duplicate-heavy traffic (exercising dedup and the cache); large
    /// values make miss-heavy traffic (exercising the queue).
    pub points: usize,
    /// Seed for the per-connection generators.
    pub seed: u64,
    /// Retry budget per request for `overloaded` responses.
    pub max_retries: usize,
    /// Upper bound on any single retry backoff sleep. The server's
    /// `retry_after_ms` hint grows exponentially per attempt (plus
    /// deterministic seeded jitter) but never past this cap.
    pub backoff_cap_ms: u64,
    /// Per-request deadline: a request whose response (including all its
    /// retries) does not arrive within this window becomes a structured
    /// failure row in the outcome instead of hanging the run.
    pub deadline_ms: u64,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            addr: "127.0.0.1:7461".into(),
            connections: 8,
            requests_per_conn: 8,
            points: 4,
            seed: 1,
            max_retries: 8,
            backoff_cap_ms: 1_000,
            deadline_ms: 30_000,
        }
    }
}

/// The design point with index `i` in the traffic space: workload-major
/// over the suite, then unit counts. Deterministic and independent of
/// the daemon.
pub fn point_job(i: usize, names: &[String]) -> Job {
    let units = UNIT_AXIS[(i / names.len()) % UNIT_AXIS.len()];
    Job {
        workload: names[i % names.len()].clone(),
        scale: Scale::Test,
        kind: JobKind::Multiscalar,
        cfg: SimConfig::multiscalar(units),
        partition: None,
    }
}

fn request_line(point: usize, job: &Job) -> String {
    // The point index rides in `id`, so the response maps back to its
    // point without positional bookkeeping.
    format!(
        "{{\"op\":\"run\",\"id\":{point},\"workload\":\"{}\",\"scale\":\"test\",\"units\":{}}}\n",
        job.workload, job.cfg.units
    )
}

/// SplitMix64 finalizer — the jitter source. Pure function of its
/// input, so retry schedules are reproducible from the seed.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The backoff before retry `attempt` (0-based) of `point` on
/// connection `conn`: the server's `retry_after_ms` hint doubled per
/// attempt, plus deterministic jitter (up to a quarter of the base,
/// derived from the seed so identical runs sleep identically while
/// concurrent connections desynchronize), hard-capped at
/// [`LoadOptions::backoff_cap_ms`].
fn backoff_ms(opts: &LoadOptions, conn: usize, point: usize, attempt: usize, hint: u64) -> u64 {
    let base = hint.max(1).saturating_mul(1u64 << attempt.min(16) as u32).min(opts.backoff_cap_ms);
    let salt = opts
        .seed
        .wrapping_add((conn as u64) << 40)
        .wrapping_add((point as u64) << 20)
        .wrapping_add(attempt as u64);
    let jitter = mix64(salt) % (base / 4 + 1);
    (base + jitter).min(opts.backoff_cap_ms)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Per-point accounting, merged across every connection.
#[derive(Clone, Debug, Default)]
struct PointState {
    requests: u64,
    digest: Option<u64>,
    divergent: u64,
    failed: u64,
}

/// Per-point summary in the deterministic report.
#[derive(Clone, Debug)]
pub struct PointReport {
    /// The design point's job id (`wc@test/ms4/w1/inorder`).
    pub job: String,
    /// Responses received for this point.
    pub requests: u64,
    /// FNV-1a digest of the (identical) response payload bytes, as 16
    /// hex digits; `None` if the point was never answered successfully.
    pub digest: Option<u64>,
}

/// Everything a load run produced.
#[derive(Clone, Debug)]
pub struct LoadOutcome {
    /// The options that generated the traffic.
    pub options: LoadOptions,
    /// Total responses received (excluding retries that failed).
    pub total: u64,
    /// Per-point summaries, in point order.
    pub per_point: Vec<PointReport>,
    /// Same-point responses whose bytes differed — must be 0 for a
    /// correct daemon.
    pub divergent: u64,
    /// Requests that never got a result (errors after retries).
    pub failed: u64,
    /// Overload rejections that were retried (operational, excluded
    /// from the deterministic report).
    pub overload_retries: u64,
    /// Requests abandoned because [`LoadOptions::deadline_ms`] elapsed
    /// before a response arrived (these also count in `failed`).
    pub deadline_failures: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-response latencies in microseconds, measured from each
    /// connection's first write (pipelined, so these are
    /// time-to-arrival, not isolated round trips). Sorted.
    pub latencies_us: Vec<u64>,
}

impl LoadOutcome {
    /// The byte-deterministic `multiscalar-load/v1` report: two runs
    /// with the same options against a correct daemon render the exact
    /// same bytes, whatever the cache or dedup state.
    pub fn report_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"multiscalar-load/v1\",\"seed\":{},\"connections\":{},\
             \"requests_per_conn\":{},\"points\":{},\"total\":{},\"per_point\":[",
            self.options.seed,
            self.options.connections,
            self.options.requests_per_conn,
            self.options.points,
            self.total,
        );
        for (i, p) in self.per_point.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"job\":\"{}\",\"requests\":{}", p.job, p.requests);
            match p.digest {
                Some(d) => {
                    let _ = write!(out, ",\"digest\":\"{d:016x}\"}}");
                }
                None => out.push_str(",\"digest\":null}"),
            }
        }
        let _ = write!(out, "],\"divergent\":{},\"failed\":{}}}", self.divergent, self.failed);
        out
    }

    /// Wall-clock measurements as JSON — intentionally a separate
    /// artifact from [`LoadOutcome::report_json`] because none of it is
    /// reproducible.
    pub fn timing_json(&self) -> String {
        let pct = |p: f64| -> u64 {
            if self.latencies_us.is_empty() {
                return 0;
            }
            let idx = ((self.latencies_us.len() - 1) as f64 * p).round() as usize;
            self.latencies_us[idx]
        };
        let secs = self.elapsed.as_secs_f64().max(1e-9);
        format!(
            "{{\"schema\":\"multiscalar-load-timing/v1\",\"elapsed_ms\":{},\
             \"requests_per_sec\":{:.1},\"overload_retries\":{},\
             \"deadline_failures\":{},\
             \"latency_us\":{{\"p50\":{},\"p90\":{},\"p99\":{}}}}}",
            self.elapsed.as_millis(),
            self.total as f64 / secs,
            self.overload_retries,
            self.deadline_failures,
            pct(0.50),
            pct(0.90),
            pct(0.99),
        )
    }
}

struct ConnTally {
    points: Vec<PointState>,
    latencies_us: Vec<u64>,
    overload_retries: u64,
    deadline_failures: u64,
}

fn record(state: &mut PointState, payload: &str) {
    state.requests += 1;
    let digest = fnv1a_64(payload.as_bytes());
    match state.digest {
        None => state.digest = Some(digest),
        Some(d) if d != digest => state.divergent += 1,
        Some(_) => {}
    }
}

/// One connection's schedule: `requests_per_conn` point indices drawn
/// by an LCG seeded from (seed, connection index).
fn schedule(opts: &LoadOptions, conn: usize) -> Vec<usize> {
    let mut state = opts
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(conn as u64)
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    (0..opts.requests_per_conn)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % opts.points.max(1)
        })
        .collect()
}

fn run_connection(
    opts: &LoadOptions,
    names: &[String],
    conn: usize,
    start: &Barrier,
) -> std::io::Result<ConnTally> {
    let mut tally = ConnTally {
        points: vec![PointState::default(); opts.points],
        latencies_us: Vec::with_capacity(opts.requests_per_conn),
        overload_retries: 0,
        deadline_failures: 0,
    };
    let deadline = Duration::from_millis(opts.deadline_ms.max(1));
    let stream = TcpStream::connect(&opts.addr)?;
    stream.set_read_timeout(Some(deadline))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    let mut hello = String::new();
    reader.read_line(&mut hello)?;
    protocol::parse_response(&hello)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;

    let plan = schedule(opts, conn);
    // Everybody connects and greets first, then fires together — this
    // is what makes connections × pipelining genuinely concurrent.
    start.wait();
    let t0 = Instant::now();

    let mut batch = String::new();
    for &point in &plan {
        batch.push_str(&request_line(point, &point_job(point, names)));
    }
    writer.write_all(batch.as_bytes())?;

    // A read that outlasts the per-request deadline (or a daemon that
    // dies mid-batch) turns the unanswered remainder into structured
    // failure rows — the run reports, it never hangs.
    let mut retry: Vec<usize> = Vec::new();
    let mut line = String::new();
    for i in 0..plan.len() {
        line.clear();
        let n = match reader.read_line(&mut line) {
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                0
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            for &point in &plan[i..] {
                tally.points[point].failed += 1;
                tally.deadline_failures += 1;
            }
            return Ok(tally);
        }
        tally.latencies_us.push(t0.elapsed().as_micros() as u64);
        let bad = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        match protocol::parse_response(&line).map_err(bad)? {
            Response::Result { id, payload } => {
                let state = tally
                    .points
                    .get_mut(id as usize)
                    .ok_or_else(|| bad(format!("response id {id} outside the point space")))?;
                record(state, &payload);
            }
            Response::Error { id, code, retry_after_ms, .. } if code == "overloaded" => {
                tally.overload_retries += 1;
                std::thread::sleep(Duration::from_millis(backoff_ms(
                    opts,
                    conn,
                    id as usize,
                    0,
                    retry_after_ms.unwrap_or(100),
                )));
                retry.push(id as usize);
            }
            Response::Error { id, .. } => {
                if let Some(state) = tally.points.get_mut(id as usize) {
                    state.failed += 1;
                }
            }
            other => return Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    // Retries run unpipelined; each point gets `max_retries` attempts
    // inside its own deadline window, with capped exponential backoff
    // between attempts. A point that cannot settle in time becomes a
    // structured failure row, never an open-ended wait.
    for point in retry {
        let mut settled = false;
        let mut deadline_hit = false;
        let point_deadline = Instant::now() + deadline;
        for attempt in 0..opts.max_retries {
            let remaining = point_deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                deadline_hit = true;
                break;
            }
            writer.write_all(request_line(point, &point_job(point, names)).as_bytes())?;
            line.clear();
            let n = match reader.read_line(&mut line) {
                Ok(n) => n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    0
                }
                Err(e) => return Err(e),
            };
            if n == 0 {
                deadline_hit = true;
                break;
            }
            match protocol::parse_response(&line) {
                Ok(Response::Result { payload, .. }) => {
                    record(&mut tally.points[point], &payload);
                    settled = true;
                    break;
                }
                Ok(Response::Error { code, retry_after_ms, .. }) if code == "overloaded" => {
                    tally.overload_retries += 1;
                    let sleep = Duration::from_millis(backoff_ms(
                        opts,
                        conn,
                        point,
                        attempt + 1,
                        retry_after_ms.unwrap_or(100),
                    ));
                    std::thread::sleep(sleep.min(remaining));
                }
                Ok(_) | Err(_) => break,
            }
        }
        if !settled {
            tally.points[point].failed += 1;
            if deadline_hit {
                tally.deadline_failures += 1;
            }
        }
    }
    Ok(tally)
}

/// Runs the load described by `opts` and aggregates the outcome.
///
/// # Errors
/// Returns the first connection-level I/O error (cannot connect, read
/// timeout, malformed greeting). Per-request overloads are retried and
/// counted, not errors.
pub fn run_load(opts: &LoadOptions) -> std::io::Result<LoadOutcome> {
    let names: Vec<String> =
        suite(Scale::Test).iter().map(|w| w.name.to_ascii_lowercase()).collect();
    let max_points = names.len() * UNIT_AXIS.len();
    if opts.points == 0 || opts.points > max_points {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("points must be in 1..={max_points}, got {}", opts.points),
        ));
    }

    let start = Arc::new(Barrier::new(opts.connections));
    let tallies: Arc<Mutex<Vec<ConnTally>>> = Arc::new(Mutex::new(Vec::new()));
    let errors: Arc<Mutex<Vec<std::io::Error>>> = Arc::new(Mutex::new(Vec::new()));
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        for conn in 0..opts.connections {
            let (start, tallies, errors, names, opts) =
                (Arc::clone(&start), Arc::clone(&tallies), Arc::clone(&errors), &names, &opts);
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn_scoped(scope, move || match run_connection(opts, names, conn, &start) {
                    Ok(tally) => tallies.lock().unwrap().push(tally),
                    Err(e) => {
                        // A stuck barrier would hang every other thread;
                        // errors before the barrier still wait on it.
                        errors.lock().unwrap().push(e);
                        start.wait();
                    }
                })
                .expect("spawn load connection thread");
        }
    });

    if let Some(e) = errors.lock().unwrap().pop() {
        return Err(e);
    }
    let elapsed = t0.elapsed();

    let mut points = vec![PointState::default(); opts.points];
    let mut latencies_us = Vec::new();
    let mut overload_retries = 0u64;
    let mut deadline_failures = 0u64;
    for tally in tallies.lock().unwrap().drain(..) {
        for (merged, p) in points.iter_mut().zip(tally.points) {
            merged.requests += p.requests;
            merged.divergent += p.divergent;
            merged.failed += p.failed;
            match (merged.digest, p.digest) {
                (None, d) => merged.digest = d,
                (Some(a), Some(b)) if a != b => merged.divergent += 1,
                _ => {}
            }
        }
        latencies_us.extend(tally.latencies_us);
        overload_retries += tally.overload_retries;
        deadline_failures += tally.deadline_failures;
    }
    latencies_us.sort_unstable();

    let per_point: Vec<PointReport> = points
        .iter()
        .enumerate()
        .map(|(i, p)| PointReport {
            job: point_job(i, &names).id(),
            requests: p.requests,
            digest: p.digest,
        })
        .collect();

    Ok(LoadOutcome {
        options: opts.clone(),
        total: points.iter().map(|p| p.requests).sum(),
        per_point,
        divergent: points.iter().map(|p| p.divergent).sum(),
        failed: points.iter().map(|p| p.failed).sum(),
        overload_retries,
        deadline_failures,
        elapsed,
        latencies_us,
    })
}

/// Fetches the daemon's raw `/stats` object over a throwaway connection
/// (for `msload --stats-out` and CI assertions).
///
/// # Errors
/// Propagates connect/read failures and malformed responses.
pub fn fetch_stats(addr: &str) -> std::io::Result<String> {
    let bad = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    protocol::parse_response(&line).map_err(bad)?;
    writer.write_all(b"{\"op\":\"stats\",\"id\":0}\n")?;
    line.clear();
    reader.read_line(&mut line)?;
    match protocol::parse_response(&line).map_err(bad)? {
        Response::Stats { raw, .. } => Ok(raw),
        other => Err(bad(format!("expected stats, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        suite(Scale::Test).iter().map(|w| w.name.to_ascii_lowercase()).collect()
    }

    #[test]
    fn schedules_are_deterministic_and_cover_points() {
        let opts = LoadOptions { points: 4, requests_per_conn: 64, ..LoadOptions::default() };
        assert_eq!(schedule(&opts, 0), schedule(&opts, 0));
        assert_ne!(schedule(&opts, 0), schedule(&opts, 1), "connections draw distinct traffic");
        let mut seen = [false; 4];
        for p in schedule(&opts, 0) {
            assert!(p < 4);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 draws cover all 4 points");
        let reseeded = LoadOptions { seed: 2, ..opts.clone() };
        assert_ne!(schedule(&reseeded, 0), schedule(&opts, 0), "seed changes the traffic");
    }

    #[test]
    fn point_space_is_stable() {
        let names = names();
        assert_eq!(point_job(0, &names).id(), format!("{}@test/ms2/w1/inorder", names[0]));
        // Units advance once the workload axis wraps.
        let wrapped = point_job(names.len(), &names);
        assert_eq!(wrapped.cfg.units, 4);
        assert_eq!(point_job(0, &names), point_job(0, &names));
    }

    #[test]
    fn divergence_is_detected() {
        let mut p = PointState::default();
        record(&mut p, r#"{"ok":true}"#);
        record(&mut p, r#"{"ok":true}"#);
        assert_eq!(p.divergent, 0);
        record(&mut p, r#"{"ok":maybe}"#);
        assert_eq!(p.divergent, 1);
        assert_eq!(p.requests, 3);
    }

    #[test]
    fn report_json_is_deterministic_and_excludes_wall_clock() {
        let outcome = LoadOutcome {
            options: LoadOptions { points: 1, ..LoadOptions::default() },
            total: 3,
            per_point: vec![PointReport {
                job: "wc@test/ms2/w1/inorder".into(),
                requests: 3,
                digest: Some(0xdead_beef),
            }],
            divergent: 0,
            failed: 0,
            overload_retries: 7,
            deadline_failures: 2,
            elapsed: Duration::from_millis(1234),
            latencies_us: vec![10, 20, 30],
        };
        let report = outcome.report_json();
        assert!(report.starts_with("{\"schema\":\"multiscalar-load/v1\","), "{report}");
        assert!(report.contains("\"digest\":\"00000000deadbeef\""), "{report}");
        assert!(!report.contains("elapsed"), "wall clock must not leak into the report");
        assert!(!report.contains("retries"), "retry noise must not leak into the report");
        let mut faster = outcome.clone();
        faster.elapsed = Duration::from_millis(1);
        faster.latencies_us = vec![1];
        faster.overload_retries = 0;
        faster.deadline_failures = 0;
        assert_eq!(report, faster.report_json(), "timing never changes the report bytes");
        assert_ne!(outcome.timing_json(), faster.timing_json());
        assert!(outcome.timing_json().contains("\"deadline_failures\":2"));
    }

    #[test]
    fn backoff_is_capped_exponential_with_deterministic_jitter() {
        let opts = LoadOptions { seed: 7, backoff_cap_ms: 800, ..LoadOptions::default() };
        // Reproducible: same inputs, same sleep.
        assert_eq!(backoff_ms(&opts, 1, 2, 3, 100), backoff_ms(&opts, 1, 2, 3, 100));
        // Grows with the attempt, never past the cap — even at absurd
        // attempt counts (the shift saturates instead of overflowing).
        let delays: Vec<u64> =
            (0..12).map(|attempt| backoff_ms(&opts, 0, 0, attempt, 100)).collect();
        assert!(delays[0] >= 100 && delays[0] <= 125, "{delays:?}");
        assert!(delays[1] >= 200, "{delays:?}");
        assert!(delays.iter().all(|&d| d <= 800), "{delays:?}");
        assert_eq!(backoff_ms(&opts, 0, 0, 1_000_000, 100), 800);
        // Jitter desynchronizes connections retrying the same point.
        let spread: std::collections::HashSet<u64> =
            (0..16).map(|conn| backoff_ms(&opts, conn, 0, 0, 100)).collect();
        assert!(spread.len() > 1, "{spread:?}");
        // And the seed changes the schedule.
        let reseeded = LoadOptions { seed: 8, ..opts.clone() };
        assert_ne!(
            (0..16).map(|c| backoff_ms(&opts, c, 0, 0, 100)).collect::<Vec<_>>(),
            (0..16).map(|c| backoff_ms(&reseeded, c, 0, 0, 100)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn silent_daemon_yields_structured_failure_rows_not_a_hang() {
        // A "daemon" that greets and then never answers anything.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                if stream.write_all(protocol::hello_line(1, 8).as_bytes()).is_err() {
                    break;
                }
                held.push(stream); // keep the socket open, say nothing
                if held.len() >= 2 {
                    break;
                }
            }
        });

        let opts = LoadOptions {
            addr: addr.to_string(),
            connections: 2,
            requests_per_conn: 3,
            points: 2,
            deadline_ms: 300,
            ..LoadOptions::default()
        };
        let t0 = Instant::now();
        let outcome = run_load(&opts).expect("a silent daemon is rows, not an error");
        assert!(t0.elapsed() < Duration::from_secs(10), "deadline bounded the run");
        assert_eq!(outcome.failed, 6, "{outcome:?}");
        assert_eq!(outcome.deadline_failures, 6, "{outcome:?}");
        assert_eq!(outcome.total, 0, "{outcome:?}");
        server.join().unwrap();
    }
}
