//! [`ProcessShardExecutor`]: ms-sweep's [`Executor`] contract backed by
//! supervised worker *processes* instead of threads.
//!
//! The sweep engine (and the `msserve` daemon, which executes through
//! the same trait) hands each cache-missed job to `run`; this executor
//! forwards it to a [`Supervisor`]-owned pool of `--worker` children
//! over the [`crate::worker`] pipe protocol and blocks until the job
//! settles. Everything that makes the result trustworthy lives below:
//!
//! - **Idempotent identity** — the job's full sweep-cache key
//!   (workload fingerprint + `SimConfig::stable_key`) names the
//!   computation, so retries after a worker death and deliberate
//!   duplicates collapse to one settled result.
//! - **Byte identity** — stats cross the pipe in the strict
//!   `statsio` kv form, so a result computed in a shard is bit-for-bit
//!   the result an [`ms_sweep::InProcessExecutor`] run produces, and
//!   merged artifacts are byte-identical regardless of which worker
//!   (or how many, after restarts) computed each point.
//! - **Crash safety** — worker panic, SIGKILL, stall, or garbage
//!   output surfaces as a restart + re-queue, a structured job error,
//!   or a poison-job quarantine; never a hang, never a lost job.
//!
//! Process shards compute plain stats only: metrics artifacts and CPI
//! stacks (which do not fit the kv wire form) stay with the in-process
//! executor, and the CLIs reject those flag combinations up front.

use crate::supervise::{PoisonJob, ShardOptions, ShardStats, Supervisor};
use ms_sweep::{Executor, Job};
use ms_workloads::Workload;
use multiscalar::RunStats;

/// An [`Executor`] that computes every job on a supervised pool of
/// worker processes. Construction spawns the pool; drop (or
/// [`ProcessShardExecutor::shutdown`]) tears it down.
pub struct ProcessShardExecutor {
    sup: Supervisor,
}

impl ProcessShardExecutor {
    /// Starts the worker pool described by `opts`.
    pub fn start(opts: ShardOptions) -> ProcessShardExecutor {
        ProcessShardExecutor { sup: Supervisor::start(opts) }
    }

    /// Snapshot of the supervision counters (restarts, re-queues,
    /// duplicates discarded, poison jobs, ...).
    pub fn stats(&self) -> ShardStats {
        self.sup.stats()
    }

    /// The poison jobs quarantined so far, in order of quarantine.
    pub fn poison_jobs(&self) -> Vec<PoisonJob> {
        self.sup.poison_jobs()
    }

    /// Stops the worker pool. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.sup.shutdown();
    }
}

impl Executor for ProcessShardExecutor {
    fn run(&self, job: &Job, workload: &Workload, _slot: usize) -> Result<RunStats, String> {
        let identity = job.cache_key(workload.fingerprint());
        self.sup.submit_and_wait(identity, job)
    }

    fn name(&self) -> &str {
        "process-shard"
    }
}
