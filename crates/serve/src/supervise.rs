//! Worker-process supervision: health, restarts, re-queues, poison jobs.
//!
//! A [`Supervisor`] owns a fixed set of worker *slots*. Each slot runs a
//! child process speaking the [`crate::worker`] pipe protocol; the
//! supervisor assumes any worker can die (panic, SIGKILL), hang (no
//! heartbeats, or a job past its deadline), or emit garbage (protocol
//! breach) at any moment, and recovers without losing or duplicating
//! results:
//!
//! - **Health** — every busy worker must heartbeat within
//!   [`ShardOptions::heartbeat_timeout_ms`] and finish within
//!   [`ShardOptions::job_deadline_ms`]; violators are killed.
//! - **Restart** — a dead slot respawns with capped exponential backoff
//!   ([`ShardOptions::backoff_base_ms`] · 2^streak, capped at
//!   [`ShardOptions::backoff_cap_ms`]); the streak resets when the slot
//!   completes a job. A global [`ShardOptions::max_restarts`] budget
//!   stops a hopeless configuration (e.g. a broken worker binary) from
//!   respawning forever — the supervisor gives up and settles every
//!   unfinished job with a structured error.
//! - **Re-queue** — a job orphaned by a worker death is re-queued
//!   *exactly once per death* by its idempotent identity (the full
//!   sweep-cache key: workload fingerprint + `SimConfig::stable_key`).
//!   If another live assignment or queued ticket for the same identity
//!   already exists, the re-queue is deduplicated instead.
//! - **Poison** — an identity whose workers died
//!   [`ShardOptions::poison_threshold`] times is permanently
//!   quarantined: its waiters get a structured error and a [`PoisonJob`]
//!   report is recorded, so one pathological job cannot wedge the sweep.
//!
//! Results are settled by identity, so concurrent submissions of the
//! same design point coalesce (single-flight, like [`crate::flight`]
//! but across processes) and a duplicated dispatch — deliberate, via
//! [`ShardOptions::duplicate_nth`], or incidental during recovery — is
//! detected on arrival and discarded, never double-settled.

use crate::worker::{exit_line, job_line, parse_worker_line, WorkerLine, GEN_ENV};
use ms_sweep::Job;
use ms_trace::json;
use multiscalar::RunStats;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a pool of worker processes should be run and disciplined.
#[derive(Clone, Debug)]
pub struct ShardOptions {
    /// Worker processes to keep alive.
    pub workers: usize,
    /// Worker command line (`argv[0]` + args). `None` re-execs the
    /// current binary with `--worker` — every ms CLI that embeds this
    /// executor handles that flag.
    pub worker_cmd: Option<Vec<String>>,
    /// A busy worker must finish its job within this deadline or be
    /// killed and replaced.
    pub job_deadline_ms: u64,
    /// A busy worker must heartbeat within this window or be presumed
    /// wedged, killed, and replaced.
    pub heartbeat_timeout_ms: u64,
    /// First-death respawn delay; doubles per consecutive death.
    pub backoff_base_ms: u64,
    /// Upper bound on the respawn delay.
    pub backoff_cap_ms: u64,
    /// Total death budget (restarts and failed spawns both count);
    /// exhausted means the supervisor gives up and settles all
    /// unfinished jobs with a structured error.
    pub max_restarts: u64,
    /// Worker deaths on the same job identity before it is declared a
    /// [`PoisonJob`] and permanently quarantined.
    pub poison_threshold: u32,
    /// Extra environment for specific worker slots, `(slot, key, value)`
    /// — the chaos harness uses this to arm [`crate::worker::FAULT_ENV`]
    /// on one slot.
    pub worker_env: Vec<(usize, String, String)>,
    /// Chaos knob: additionally re-queue the identity of the N-th
    /// dispatch (0-based), so the same job runs on two workers and the
    /// second result must be discarded as a duplicate.
    pub duplicate_nth: Option<u64>,
}

impl Default for ShardOptions {
    fn default() -> ShardOptions {
        ShardOptions {
            workers: 2,
            worker_cmd: None,
            job_deadline_ms: 120_000,
            heartbeat_timeout_ms: 2_000,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
            max_restarts: 64,
            poison_threshold: 3,
            worker_env: Vec::new(),
            duplicate_nth: None,
        }
    }
}

/// A job identity permanently quarantined after repeated worker deaths.
#[derive(Clone, Debug)]
pub struct PoisonJob {
    /// Human-readable job id (`wc@test/ms4/w1/inorder`).
    pub job: String,
    /// The full idempotent identity (sweep-cache key).
    pub identity: String,
    /// Worker deaths attributed to this identity.
    pub deaths: u32,
    /// What the last death looked like.
    pub last_error: String,
}

/// Counters describing everything the supervisor did. Snapshot via
/// [`Supervisor::stats`]; rendered deterministically by
/// [`ShardStats::to_json`] (field order fixed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Worker processes ever spawned (initial spawns + restarts).
    pub spawned: u64,
    /// Respawns after a death (excludes the initial spawns).
    pub restarts: u64,
    /// Worker deaths observed (any cause).
    pub deaths: u64,
    /// Deaths caused by a per-job deadline kill.
    pub deadline_kills: u64,
    /// Deaths caused by a missed-heartbeat kill.
    pub hang_kills: u64,
    /// Deaths caused by an unparseable worker line.
    pub protocol_breaches: u64,
    /// Orphaned jobs re-queued by identity.
    pub requeued: u64,
    /// Orphan re-queues skipped because the identity already had a live
    /// assignment or queued ticket (deduplicated re-queue).
    pub requeue_deduped: u64,
    /// Results discarded because their identity was already settled.
    pub duplicates_discarded: u64,
    /// Identities quarantined as [`PoisonJob`]s.
    pub poisoned: u64,
    /// Job dispatches written to workers.
    pub dispatched: u64,
    /// Jobs settled from a worker result (ok or error).
    pub completed: u64,
    /// Submissions that joined an identity already submitted.
    pub dedup_joins: u64,
}

impl ShardStats {
    /// Deterministic JSON rendering (fixed field order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"spawned\":{},\"restarts\":{},\"deaths\":{},\"deadline_kills\":{},\
             \"hang_kills\":{},\"protocol_breaches\":{},\"requeued\":{},\
             \"requeue_deduped\":{},\"duplicates_discarded\":{},\"poisoned\":{},\
             \"dispatched\":{},\"completed\":{},\"dedup_joins\":{}",
            self.spawned,
            self.restarts,
            self.deaths,
            self.deadline_kills,
            self.hang_kills,
            self.protocol_breaches,
            self.requeued,
            self.requeue_deduped,
            self.duplicates_discarded,
            self.poisoned,
            self.dispatched,
            self.completed,
            self.dedup_joins,
        );
        s.push('}');
        s
    }
}

/// Renders poison jobs as a deterministic JSON array (order of record).
pub fn poison_jobs_json(jobs: &[PoisonJob]) -> String {
    let mut s = String::from("[");
    for (i, p) in jobs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"job\":{},\"identity\":{},\"deaths\":{},\"last_error\":{}}}",
            json::string(&p.job),
            json::string(&p.identity),
            p.deaths,
            json::string(&p.last_error),
        );
    }
    s.push(']');
    s
}

enum SlotState {
    /// Process spawned; waiting for its `ready` line.
    Starting {
        /// Spawn time; a worker that never readies is killed after the
        /// heartbeat window (readiness is immediate in a healthy child).
        since: Instant,
    },
    /// Ready for a job.
    Idle,
    /// Computing `identity` as wire id `job_id`.
    Busy { identity: String, job_id: u64, deadline: Instant, last_hb: Instant },
    /// Dead; respawns at `respawn_at` (unless the supervisor gave up).
    Down { respawn_at: Instant },
    /// Shut down for good.
    Stopped,
}

struct WorkerSlot {
    state: SlotState,
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// Spawn generation (exported to the worker via [`GEN_ENV`]).
    gen: u64,
    /// Consecutive deaths without completing a job (backoff input).
    streak: u32,
    /// Bumped on every (re)spawn so a stale reader thread — still
    /// draining the previous process's pipe — cannot act on this slot.
    epoch: u64,
}

struct EntryState {
    job: Job,
    result: Option<Result<RunStats, String>>,
    /// Workers currently computing this identity.
    live_assignments: u32,
    /// Tickets for this identity currently in the dispatch queue.
    queued: u32,
    /// Worker deaths attributed to this identity.
    deaths: u32,
}

#[derive(Default)]
struct State {
    entries: HashMap<String, EntryState>,
    queue: VecDeque<String>,
    workers: Vec<WorkerSlot>,
    next_job_id: u64,
    stats: ShardStats,
    poison: Vec<PoisonJob>,
    /// Restart budget exhausted: stop respawning, fail fast.
    gave_up: bool,
    shutdown: bool,
}

struct Inner {
    opts: ShardOptions,
    state: Mutex<State>,
    /// Wakes the monitor thread (new work, a death, shutdown).
    work_cv: Condvar,
    /// Wakes submitters blocked on a settle.
    settle_cv: Condvar,
}

/// A supervised pool of worker processes executing jobs by idempotent
/// identity. See the module docs for the discipline; see
/// [`crate::shard::ProcessShardExecutor`] for the [`ms_sweep::Executor`]
/// facade.
pub struct Supervisor {
    inner: Arc<Inner>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

const MONITOR_TICK: Duration = Duration::from_millis(5);

fn backoff_delay(opts: &ShardOptions, streak: u32) -> Duration {
    let exp = streak.saturating_sub(1).min(16);
    let ms = opts.backoff_base_ms.saturating_mul(1u64 << exp).min(opts.backoff_cap_ms);
    Duration::from_millis(ms)
}

impl Supervisor {
    /// Starts the pool: spawns `opts.workers` worker processes and the
    /// monitor thread. Workers that fail to spawn retry with backoff;
    /// a configuration that can never spawn burns the restart budget
    /// and fails jobs with a structured error rather than hanging.
    pub fn start(opts: ShardOptions) -> Supervisor {
        let workers = opts.workers.max(1);
        let inner = Arc::new(Inner {
            opts,
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            settle_cv: Condvar::new(),
        });
        {
            let mut st = inner.state.lock().unwrap();
            for _ in 0..workers {
                st.workers.push(WorkerSlot {
                    state: SlotState::Down { respawn_at: Instant::now() },
                    child: None,
                    stdin: None,
                    gen: 0,
                    streak: 0,
                    epoch: 0,
                });
            }
            for i in 0..workers {
                Inner::spawn_worker(&inner, &mut st, i);
            }
        }
        let monitor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || Inner::monitor_loop(&inner))
        };
        Supervisor { inner, monitor: Mutex::new(Some(monitor)) }
    }

    /// Submits `job` under `identity` (its sweep-cache key) and blocks
    /// until it settles. Concurrent submissions of the same identity
    /// coalesce onto one computation; a later submission of an identity
    /// that already settled returns the recorded result immediately.
    ///
    /// # Errors
    /// The worker's failure string, a poison-job report, or a
    /// supervisor-gave-up error. Never hangs: every path to a worker
    /// death, stall, or restart-budget exhaustion settles the entry.
    pub fn submit_and_wait(&self, identity: String, job: &Job) -> Result<RunStats, String> {
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap();
        if st.shutdown {
            return Err("process-shard supervisor is shut down".into());
        }
        if st.gave_up {
            return Err(gave_up_error(&st.stats));
        }
        let joined = st.entries.contains_key(&identity);
        if joined {
            st.stats.dedup_joins += 1;
            if let Some(r) = &st.entries[&identity].result {
                return r.clone();
            }
        } else {
            st.entries.insert(
                identity.clone(),
                EntryState {
                    job: job.clone(),
                    result: None,
                    live_assignments: 0,
                    queued: 1,
                    deaths: 0,
                },
            );
            st.queue.push_back(identity.clone());
            inner.work_cv.notify_all();
        }
        loop {
            if let Some(r) = &st.entries[&identity].result {
                return r.clone();
            }
            st = inner.settle_cv.wait(st).unwrap();
        }
    }

    /// A snapshot of the supervision counters.
    pub fn stats(&self) -> ShardStats {
        self.inner.state.lock().unwrap().stats
    }

    /// The poison jobs recorded so far, in quarantine order.
    pub fn poison_jobs(&self) -> Vec<PoisonJob> {
        self.inner.state.lock().unwrap().poison.clone()
    }

    /// Stops the pool: asks workers to exit, kills stragglers, settles
    /// any unfinished jobs with a structured error, joins the monitor.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        if let Some(h) = self.monitor.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn gave_up_error(stats: &ShardStats) -> String {
    format!(
        "process-shard supervisor gave up: restart budget exhausted \
         ({} restarts, {} deaths); worker command is likely broken",
        stats.restarts, stats.deaths
    )
}

impl Inner {
    fn worker_command(&self) -> Command {
        match &self.opts.worker_cmd {
            Some(argv) if !argv.is_empty() => {
                let mut c = Command::new(&argv[0]);
                c.args(&argv[1..]);
                c
            }
            _ => {
                // Re-exec ourselves in worker mode. If the executable
                // path is unknowable the spawn fails and the restart
                // budget turns it into a structured give-up error.
                let exe = std::env::current_exe()
                    .unwrap_or_else(|_| std::path::PathBuf::from("ms-worker-unresolvable"));
                let mut c = Command::new(exe);
                c.arg("--worker");
                c
            }
        }
    }

    /// Spawns (or respawns) slot `i`. On failure the slot goes back to
    /// `Down` with backoff and the death is counted against the budget.
    fn spawn_worker(inner: &Arc<Inner>, st: &mut State, i: usize) {
        let is_restart = st.workers[i].gen > 0;
        let mut cmd = inner.worker_command();
        cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::null());
        cmd.env(GEN_ENV, st.workers[i].gen.to_string());
        for (slot, k, v) in &inner.opts.worker_env {
            if *slot == i {
                cmd.env(k, v);
            }
        }
        match cmd.spawn() {
            Ok(mut child) => {
                let stdout = child.stdout.take().expect("stdout was piped");
                let stdin = child.stdin.take().expect("stdin was piped");
                let slot = &mut st.workers[i];
                slot.epoch += 1;
                slot.gen += 1;
                slot.child = Some(child);
                slot.stdin = Some(stdin);
                slot.state = SlotState::Starting { since: Instant::now() };
                st.stats.spawned += 1;
                if is_restart {
                    st.stats.restarts += 1;
                }
                let epoch = slot.epoch;
                let rd = Arc::clone(inner);
                std::thread::spawn(move || Inner::reader_loop(&rd, i, epoch, stdout));
            }
            Err(e) => {
                // The slot was `Down` (that is the only state we spawn
                // from), so `on_death` would no-op; burn budget and
                // reschedule by hand.
                eprintln!("ms-serve: worker spawn failed: {e}");
                let slot = &mut st.workers[i];
                slot.streak += 1;
                st.stats.deaths += 1;
                if st.stats.deaths >= inner.opts.max_restarts {
                    Inner::give_up(inner, st);
                    return;
                }
                let delay = backoff_delay(&inner.opts, st.workers[i].streak);
                st.workers[i].state = SlotState::Down { respawn_at: Instant::now() + delay };
            }
        }
    }

    /// Handles a death of slot `i` from any cause. Safe to call from the
    /// monitor (kills) and readers (EOF, breaches); the first caller
    /// wins, later calls on an already-`Down` slot are no-ops.
    fn on_death(inner: &Arc<Inner>, st: &mut State, i: usize, detail: &str) {
        let slot = &mut st.workers[i];
        let prev = std::mem::replace(&mut slot.state, SlotState::Stopped);
        match prev {
            SlotState::Down { .. } | SlotState::Stopped => {
                slot.state = prev;
                return;
            }
            SlotState::Starting { .. } | SlotState::Idle => {}
            SlotState::Busy { identity, .. } => {
                Inner::orphan(inner, st, &identity, detail);
            }
        }
        let slot = &mut st.workers[i];
        slot.streak += 1;
        slot.stdin = None;
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        st.stats.deaths += 1;
        if st.stats.deaths >= inner.opts.max_restarts {
            Inner::give_up(inner, st);
            return;
        }
        let delay = backoff_delay(&inner.opts, st.workers[i].streak);
        st.workers[i].state = SlotState::Down { respawn_at: Instant::now() + delay };
        inner.work_cv.notify_all();
    }

    /// A worker died while computing `identity`: re-queue exactly once
    /// unless another path to completion exists, or quarantine it as a
    /// poison job once the death threshold is hit.
    fn orphan(inner: &Arc<Inner>, st: &mut State, identity: &str, detail: &str) {
        let Some(e) = st.entries.get_mut(identity) else { return };
        e.live_assignments = e.live_assignments.saturating_sub(1);
        if e.result.is_some() {
            return;
        }
        e.deaths += 1;
        if e.live_assignments > 0 || e.queued > 0 {
            st.stats.requeue_deduped += 1;
        } else if e.deaths >= inner.opts.poison_threshold {
            let poison = PoisonJob {
                job: e.job.id(),
                identity: identity.to_string(),
                deaths: e.deaths,
                last_error: detail.to_string(),
            };
            e.result = Some(Err(format!(
                "poison job: workers died {} times computing {} (last: {detail}); \
                 identity quarantined",
                e.deaths,
                e.job.id(),
            )));
            st.stats.poisoned += 1;
            st.poison.push(poison);
            inner.settle_cv.notify_all();
        } else {
            e.queued += 1;
            st.queue.push_back(identity.to_string());
            st.stats.requeued += 1;
        }
    }

    /// Restart budget exhausted: settle everything, stop respawning.
    fn give_up(inner: &Arc<Inner>, st: &mut State) {
        st.gave_up = true;
        let err = gave_up_error(&st.stats);
        for e in st.entries.values_mut() {
            if e.result.is_none() {
                e.result = Some(Err(err.clone()));
            }
        }
        st.queue.clear();
        inner.settle_cv.notify_all();
    }

    /// Pops queue tickets onto idle workers.
    fn dispatch(inner: &Arc<Inner>, st: &mut State) {
        loop {
            if st.queue.is_empty() {
                return;
            }
            let Some(i) = st.workers.iter().position(|w| matches!(w.state, SlotState::Idle)) else {
                return;
            };
            let identity = st.queue.pop_front().expect("queue checked non-empty");
            let job_id = st.next_job_id;
            st.next_job_id += 1;
            let nth = st.stats.dispatched;
            st.stats.dispatched += 1;
            let (line, duplicate) = {
                let e = st.entries.get_mut(&identity).expect("queued identities have entries");
                e.queued = e.queued.saturating_sub(1);
                e.live_assignments += 1;
                (job_line(job_id, &e.job), inner.opts.duplicate_nth == Some(nth))
            };
            if duplicate {
                // Chaos: enqueue the same identity again; whichever
                // result arrives second is discarded on arrival.
                let e = st.entries.get_mut(&identity).expect("entry exists");
                e.queued += 1;
                st.queue.push_back(identity.clone());
            }
            let now = Instant::now();
            let deadline = now + Duration::from_millis(inner.opts.job_deadline_ms);
            st.workers[i].state = SlotState::Busy { identity, job_id, deadline, last_hb: now };
            let write = st.workers[i]
                .stdin
                .as_mut()
                .map(|s| s.write_all(line.as_bytes()).and_then(|()| s.flush()));
            match write {
                Some(Ok(())) => {}
                _ => Inner::on_death(inner, st, i, "worker stdin write failed"),
            }
        }
    }

    fn monitor_loop(inner: &Arc<Inner>) {
        let mut st = inner.state.lock().unwrap();
        loop {
            if st.shutdown {
                break;
            }
            let now = Instant::now();
            // Respawn due slots (unless the budget is gone).
            if !st.gave_up {
                for i in 0..st.workers.len() {
                    if let SlotState::Down { respawn_at } = st.workers[i].state {
                        if now >= respawn_at {
                            Inner::spawn_worker(inner, &mut st, i);
                        }
                    }
                }
            }
            // Kill deadline violators and wedged workers.
            let hb_window = Duration::from_millis(inner.opts.heartbeat_timeout_ms);
            for i in 0..st.workers.len() {
                match st.workers[i].state {
                    SlotState::Busy { deadline, last_hb, .. } => {
                        if now >= deadline {
                            st.stats.deadline_kills += 1;
                            Inner::on_death(inner, &mut st, i, "job deadline exceeded");
                        } else if now.duration_since(last_hb) >= hb_window {
                            st.stats.hang_kills += 1;
                            Inner::on_death(inner, &mut st, i, "worker heartbeat lost");
                        }
                    }
                    SlotState::Starting { since } if now.duration_since(since) >= hb_window => {
                        st.stats.hang_kills += 1;
                        Inner::on_death(inner, &mut st, i, "worker never became ready");
                    }
                    _ => {}
                }
            }
            Inner::dispatch(inner, &mut st);
            let (next, _) = inner.work_cv.wait_timeout(st, MONITOR_TICK).unwrap();
            st = next;
        }
        // Shutdown: ask nicely, then make sure, then settle leftovers.
        for slot in st.workers.iter_mut() {
            if let Some(stdin) = slot.stdin.as_mut() {
                let _ = stdin.write_all(exit_line().as_bytes());
                let _ = stdin.flush();
            }
            slot.stdin = None;
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            slot.state = SlotState::Stopped;
        }
        for e in st.entries.values_mut() {
            if e.result.is_none() {
                e.result = Some(Err("process-shard supervisor shut down mid-job".into()));
            }
        }
        inner.settle_cv.notify_all();
    }

    fn reader_loop(inner: &Arc<Inner>, i: usize, epoch: u64, stdout: std::process::ChildStdout) {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader.read_line(&mut line);
            let mut st = inner.state.lock().unwrap();
            if st.workers[i].epoch != epoch || st.shutdown {
                return; // a newer process owns this slot now
            }
            match n {
                Ok(0) | Err(_) => {
                    Inner::on_death(inner, &mut st, i, "worker process died");
                    inner.work_cv.notify_all();
                    return;
                }
                Ok(_) => match parse_worker_line(&line) {
                    Ok(WorkerLine::Ready { .. }) => {
                        if matches!(st.workers[i].state, SlotState::Starting { .. }) {
                            st.workers[i].state = SlotState::Idle;
                            inner.work_cv.notify_all();
                        }
                    }
                    Ok(WorkerLine::Heartbeat { job_id }) => {
                        if let SlotState::Busy { job_id: expect, last_hb, .. } =
                            &mut st.workers[i].state
                        {
                            if job_id == *expect {
                                *last_hb = Instant::now();
                            }
                        }
                    }
                    Ok(WorkerLine::Result { job_id, result }) => {
                        let result = result.map(|b| *b);
                        Inner::on_result(inner, &mut st, i, job_id, result);
                    }
                    Err(e) => {
                        st.stats.protocol_breaches += 1;
                        Inner::on_death(inner, &mut st, i, &format!("worker protocol breach: {e}"));
                        inner.work_cv.notify_all();
                        return;
                    }
                },
            }
        }
    }

    fn on_result(
        inner: &Arc<Inner>,
        st: &mut State,
        i: usize,
        job_id: u64,
        result: Result<RunStats, String>,
    ) {
        let prev = std::mem::replace(&mut st.workers[i].state, SlotState::Idle);
        let SlotState::Busy { identity, job_id: expect, .. } = prev else {
            st.workers[i].state = prev;
            st.stats.protocol_breaches += 1;
            Inner::on_death(inner, st, i, "result from a worker with no job");
            return;
        };
        if job_id != expect {
            st.workers[i].state = SlotState::Busy {
                identity,
                job_id: expect,
                deadline: Instant::now(),
                last_hb: Instant::now(),
            };
            st.stats.protocol_breaches += 1;
            Inner::on_death(inner, st, i, "result for a job this worker does not hold");
            return;
        }
        st.workers[i].streak = 0;
        if let Some(e) = st.entries.get_mut(&identity) {
            e.live_assignments = e.live_assignments.saturating_sub(1);
            if e.result.is_some() {
                st.stats.duplicates_discarded += 1;
            } else {
                e.result = Some(result);
                st.stats.completed += 1;
                inner.settle_cv.notify_all();
            }
        }
        inner.work_cv.notify_all();
    }
}
