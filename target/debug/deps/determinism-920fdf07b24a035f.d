/root/repo/target/debug/deps/determinism-920fdf07b24a035f.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-920fdf07b24a035f: tests/determinism.rs

tests/determinism.rs:
