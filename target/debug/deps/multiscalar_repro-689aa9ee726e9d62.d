/root/repo/target/debug/deps/multiscalar_repro-689aa9ee726e9d62.d: src/lib.rs

/root/repo/target/debug/deps/multiscalar_repro-689aa9ee726e9d62: src/lib.rs

src/lib.rs:
