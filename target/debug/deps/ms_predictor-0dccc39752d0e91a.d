/root/repo/target/debug/deps/ms_predictor-0dccc39752d0e91a.d: crates/predictor/src/lib.rs

/root/repo/target/debug/deps/ms_predictor-0dccc39752d0e91a: crates/predictor/src/lib.rs

crates/predictor/src/lib.rs:
