/root/repo/target/debug/deps/ms_bench-247bfb3db86e7689.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libms_bench-247bfb3db86e7689.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libms_bench-247bfb3db86e7689.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
