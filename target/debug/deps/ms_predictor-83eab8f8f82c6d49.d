/root/repo/target/debug/deps/ms_predictor-83eab8f8f82c6d49.d: crates/predictor/src/lib.rs

/root/repo/target/debug/deps/libms_predictor-83eab8f8f82c6d49.rlib: crates/predictor/src/lib.rs

/root/repo/target/debug/deps/libms_predictor-83eab8f8f82c6d49.rmeta: crates/predictor/src/lib.rs

crates/predictor/src/lib.rs:
