/root/repo/target/debug/deps/speed-904bc3b3301f6c83.d: crates/workloads/src/bin/speed.rs

/root/repo/target/debug/deps/speed-904bc3b3301f6c83: crates/workloads/src/bin/speed.rs

crates/workloads/src/bin/speed.rs:
