/root/repo/target/debug/deps/ms_cfg-3b91af9d3575a817.d: crates/cfg/src/lib.rs crates/cfg/src/summary.rs crates/cfg/src/taskcheck.rs

/root/repo/target/debug/deps/libms_cfg-3b91af9d3575a817.rlib: crates/cfg/src/lib.rs crates/cfg/src/summary.rs crates/cfg/src/taskcheck.rs

/root/repo/target/debug/deps/libms_cfg-3b91af9d3575a817.rmeta: crates/cfg/src/lib.rs crates/cfg/src/summary.rs crates/cfg/src/taskcheck.rs

crates/cfg/src/lib.rs:
crates/cfg/src/summary.rs:
crates/cfg/src/taskcheck.rs:
