/root/repo/target/debug/deps/wldbg-1078fb56a8b7b511.d: crates/workloads/src/bin/wldbg.rs

/root/repo/target/debug/deps/wldbg-1078fb56a8b7b511: crates/workloads/src/bin/wldbg.rs

crates/workloads/src/bin/wldbg.rs:
