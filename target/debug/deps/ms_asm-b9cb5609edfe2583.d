/root/repo/target/debug/deps/ms_asm-b9cb5609edfe2583.d: crates/asm/src/lib.rs crates/asm/src/assemble.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/parser.rs

/root/repo/target/debug/deps/libms_asm-b9cb5609edfe2583.rlib: crates/asm/src/lib.rs crates/asm/src/assemble.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/parser.rs

/root/repo/target/debug/deps/libms_asm-b9cb5609edfe2583.rmeta: crates/asm/src/lib.rs crates/asm/src/assemble.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/parser.rs

crates/asm/src/lib.rs:
crates/asm/src/assemble.rs:
crates/asm/src/disasm.rs:
crates/asm/src/error.rs:
crates/asm/src/parser.rs:
