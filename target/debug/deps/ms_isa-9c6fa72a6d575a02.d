/root/repo/target/debug/deps/ms_isa-9c6fa72a6d575a02.d: crates/isa/src/lib.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/tags.rs crates/isa/src/task.rs

/root/repo/target/debug/deps/ms_isa-9c6fa72a6d575a02: crates/isa/src/lib.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/tags.rs crates/isa/src/task.rs

crates/isa/src/lib.rs:
crates/isa/src/encode.rs:
crates/isa/src/instr.rs:
crates/isa/src/op.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
crates/isa/src/tags.rs:
crates/isa/src/task.rs:
