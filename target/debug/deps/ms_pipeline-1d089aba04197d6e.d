/root/repo/target/debug/deps/ms_pipeline-1d089aba04197d6e.d: crates/pipeline/src/lib.rs crates/pipeline/src/exec.rs crates/pipeline/src/fu.rs crates/pipeline/src/regfile.rs crates/pipeline/src/unit.rs

/root/repo/target/debug/deps/libms_pipeline-1d089aba04197d6e.rlib: crates/pipeline/src/lib.rs crates/pipeline/src/exec.rs crates/pipeline/src/fu.rs crates/pipeline/src/regfile.rs crates/pipeline/src/unit.rs

/root/repo/target/debug/deps/libms_pipeline-1d089aba04197d6e.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/exec.rs crates/pipeline/src/fu.rs crates/pipeline/src/regfile.rs crates/pipeline/src/unit.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/exec.rs:
crates/pipeline/src/fu.rs:
crates/pipeline/src/regfile.rs:
crates/pipeline/src/unit.rs:
