/root/repo/target/debug/deps/wlstep-3712526e0f4fd2bf.d: crates/workloads/src/bin/wlstep.rs

/root/repo/target/debug/deps/wlstep-3712526e0f4fd2bf: crates/workloads/src/bin/wlstep.rs

crates/workloads/src/bin/wlstep.rs:
