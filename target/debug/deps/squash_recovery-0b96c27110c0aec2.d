/root/repo/target/debug/deps/squash_recovery-0b96c27110c0aec2.d: tests/squash_recovery.rs

/root/repo/target/debug/deps/squash_recovery-0b96c27110c0aec2: tests/squash_recovery.rs

tests/squash_recovery.rs:
