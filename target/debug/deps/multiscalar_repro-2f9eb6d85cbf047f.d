/root/repo/target/debug/deps/multiscalar_repro-2f9eb6d85cbf047f.d: src/lib.rs

/root/repo/target/debug/deps/libmultiscalar_repro-2f9eb6d85cbf047f.rlib: src/lib.rs

/root/repo/target/debug/deps/libmultiscalar_repro-2f9eb6d85cbf047f.rmeta: src/lib.rs

src/lib.rs:
