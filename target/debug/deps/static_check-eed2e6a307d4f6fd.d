/root/repo/target/debug/deps/static_check-eed2e6a307d4f6fd.d: crates/workloads/tests/static_check.rs

/root/repo/target/debug/deps/static_check-eed2e6a307d4f6fd: crates/workloads/tests/static_check.rs

crates/workloads/tests/static_check.rs:
