/root/repo/target/debug/deps/ms_bench-32a406abcf7a7a08.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ms_bench-32a406abcf7a7a08: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
