/root/repo/target/debug/deps/coverage-2323ff2a115dd122.d: crates/isa/tests/coverage.rs

/root/repo/target/debug/deps/coverage-2323ff2a115dd122: crates/isa/tests/coverage.rs

crates/isa/tests/coverage.rs:
