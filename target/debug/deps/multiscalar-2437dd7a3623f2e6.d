/root/repo/target/debug/deps/multiscalar-2437dd7a3623f2e6.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/processor.rs crates/core/src/ring.rs crates/core/src/scalar.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/multiscalar-2437dd7a3623f2e6: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/processor.rs crates/core/src/ring.rs crates/core/src/scalar.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/processor.rs:
crates/core/src/ring.rs:
crates/core/src/scalar.rs:
crates/core/src/stats.rs:
