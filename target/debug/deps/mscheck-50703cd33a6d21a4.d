/root/repo/target/debug/deps/mscheck-50703cd33a6d21a4.d: crates/cfg/src/bin/mscheck.rs

/root/repo/target/debug/deps/mscheck-50703cd33a6d21a4: crates/cfg/src/bin/mscheck.rs

crates/cfg/src/bin/mscheck.rs:
