/root/repo/target/debug/deps/multiscalar_repro-f557f2fc06836e40.d: src/lib.rs

/root/repo/target/debug/deps/multiscalar_repro-f557f2fc06836e40: src/lib.rs

src/lib.rs:
