/root/repo/target/debug/deps/ms_cfg-cec23112bce41ab1.d: crates/cfg/src/lib.rs crates/cfg/src/summary.rs crates/cfg/src/taskcheck.rs

/root/repo/target/debug/deps/ms_cfg-cec23112bce41ab1: crates/cfg/src/lib.rs crates/cfg/src/summary.rs crates/cfg/src/taskcheck.rs

crates/cfg/src/lib.rs:
crates/cfg/src/summary.rs:
crates/cfg/src/taskcheck.rs:
