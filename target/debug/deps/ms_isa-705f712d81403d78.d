/root/repo/target/debug/deps/ms_isa-705f712d81403d78.d: crates/isa/src/lib.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/tags.rs crates/isa/src/task.rs

/root/repo/target/debug/deps/libms_isa-705f712d81403d78.rlib: crates/isa/src/lib.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/tags.rs crates/isa/src/task.rs

/root/repo/target/debug/deps/libms_isa-705f712d81403d78.rmeta: crates/isa/src/lib.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/tags.rs crates/isa/src/task.rs

crates/isa/src/lib.rs:
crates/isa/src/encode.rs:
crates/isa/src/instr.rs:
crates/isa/src/op.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
crates/isa/src/tags.rs:
crates/isa/src/task.rs:
