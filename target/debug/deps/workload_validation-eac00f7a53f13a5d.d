/root/repo/target/debug/deps/workload_validation-eac00f7a53f13a5d.d: tests/workload_validation.rs

/root/repo/target/debug/deps/workload_validation-eac00f7a53f13a5d: tests/workload_validation.rs

tests/workload_validation.rs:
