/root/repo/target/debug/deps/speed-707f7449fb3a964d.d: crates/workloads/src/bin/speed.rs

/root/repo/target/debug/deps/speed-707f7449fb3a964d: crates/workloads/src/bin/speed.rs

crates/workloads/src/bin/speed.rs:
