/root/repo/target/debug/deps/workload_validation-3c32fdf28c53952c.d: tests/workload_validation.rs

/root/repo/target/debug/deps/workload_validation-3c32fdf28c53952c: tests/workload_validation.rs

tests/workload_validation.rs:
