/root/repo/target/debug/deps/multiscalar-de704cb0be8900eb.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/processor.rs crates/core/src/ring.rs crates/core/src/scalar.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libmultiscalar-de704cb0be8900eb.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/processor.rs crates/core/src/ring.rs crates/core/src/scalar.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libmultiscalar-de704cb0be8900eb.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/processor.rs crates/core/src/ring.rs crates/core/src/scalar.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/processor.rs:
crates/core/src/ring.rs:
crates/core/src/scalar.rs:
crates/core/src/stats.rs:
