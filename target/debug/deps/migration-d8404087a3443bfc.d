/root/repo/target/debug/deps/migration-d8404087a3443bfc.d: crates/workloads/tests/migration.rs

/root/repo/target/debug/deps/migration-d8404087a3443bfc: crates/workloads/tests/migration.rs

crates/workloads/tests/migration.rs:
