/root/repo/target/debug/deps/wlstep-17237924d9133448.d: crates/workloads/src/bin/wlstep.rs

/root/repo/target/debug/deps/wlstep-17237924d9133448: crates/workloads/src/bin/wlstep.rs

crates/workloads/src/bin/wlstep.rs:
