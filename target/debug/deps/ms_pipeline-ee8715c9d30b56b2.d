/root/repo/target/debug/deps/ms_pipeline-ee8715c9d30b56b2.d: crates/pipeline/src/lib.rs crates/pipeline/src/exec.rs crates/pipeline/src/fu.rs crates/pipeline/src/regfile.rs crates/pipeline/src/unit.rs

/root/repo/target/debug/deps/ms_pipeline-ee8715c9d30b56b2: crates/pipeline/src/lib.rs crates/pipeline/src/exec.rs crates/pipeline/src/fu.rs crates/pipeline/src/regfile.rs crates/pipeline/src/unit.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/exec.rs:
crates/pipeline/src/fu.rs:
crates/pipeline/src/regfile.rs:
crates/pipeline/src/unit.rs:
