/root/repo/target/debug/deps/wldbg-f7d869c474191626.d: crates/workloads/src/bin/wldbg.rs

/root/repo/target/debug/deps/wldbg-f7d869c474191626: crates/workloads/src/bin/wldbg.rs

crates/workloads/src/bin/wldbg.rs:
