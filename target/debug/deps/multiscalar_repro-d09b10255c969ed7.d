/root/repo/target/debug/deps/multiscalar_repro-d09b10255c969ed7.d: src/lib.rs

/root/repo/target/debug/deps/libmultiscalar_repro-d09b10255c969ed7.rlib: src/lib.rs

/root/repo/target/debug/deps/libmultiscalar_repro-d09b10255c969ed7.rmeta: src/lib.rs

src/lib.rs:
