/root/repo/target/debug/deps/ms_memsys-abec7016bcdfc07b.d: crates/memsys/src/lib.rs crates/memsys/src/arb.rs crates/memsys/src/banks.rs crates/memsys/src/bus.rs crates/memsys/src/cache.rs crates/memsys/src/icache.rs crates/memsys/src/mem.rs

/root/repo/target/debug/deps/libms_memsys-abec7016bcdfc07b.rlib: crates/memsys/src/lib.rs crates/memsys/src/arb.rs crates/memsys/src/banks.rs crates/memsys/src/bus.rs crates/memsys/src/cache.rs crates/memsys/src/icache.rs crates/memsys/src/mem.rs

/root/repo/target/debug/deps/libms_memsys-abec7016bcdfc07b.rmeta: crates/memsys/src/lib.rs crates/memsys/src/arb.rs crates/memsys/src/banks.rs crates/memsys/src/bus.rs crates/memsys/src/cache.rs crates/memsys/src/icache.rs crates/memsys/src/mem.rs

crates/memsys/src/lib.rs:
crates/memsys/src/arb.rs:
crates/memsys/src/banks.rs:
crates/memsys/src/bus.rs:
crates/memsys/src/cache.rs:
crates/memsys/src/icache.rs:
crates/memsys/src/mem.rs:
