/root/repo/target/debug/deps/props-4747a1458199de44.d: tests/props.rs

/root/repo/target/debug/deps/props-4747a1458199de44: tests/props.rs

tests/props.rs:
