/root/repo/target/debug/deps/ms_asm-5ff2f1dfdb62f090.d: crates/asm/src/lib.rs crates/asm/src/assemble.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/parser.rs

/root/repo/target/debug/deps/ms_asm-5ff2f1dfdb62f090: crates/asm/src/lib.rs crates/asm/src/assemble.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/parser.rs

crates/asm/src/lib.rs:
crates/asm/src/assemble.rs:
crates/asm/src/disasm.rs:
crates/asm/src/error.rs:
crates/asm/src/parser.rs:
