/root/repo/target/debug/deps/determinism-a5caa8b1a9812146.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-a5caa8b1a9812146: tests/determinism.rs

tests/determinism.rs:
