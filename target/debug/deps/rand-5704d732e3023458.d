/root/repo/target/debug/deps/rand-5704d732e3023458.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-5704d732e3023458: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
