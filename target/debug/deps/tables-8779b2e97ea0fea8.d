/root/repo/target/debug/deps/tables-8779b2e97ea0fea8.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-8779b2e97ea0fea8: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
