/root/repo/target/debug/deps/squash_recovery-be1c2026fad973fe.d: tests/squash_recovery.rs

/root/repo/target/debug/deps/squash_recovery-be1c2026fad973fe: tests/squash_recovery.rs

tests/squash_recovery.rs:
