/root/repo/target/debug/deps/ms_workloads-f9fdffbbce4bd29c.d: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/data.rs crates/workloads/src/eqntott.rs crates/workloads/src/espresso.rs crates/workloads/src/gcc_like.rs crates/workloads/src/sc_like.rs crates/workloads/src/symsearch.rs crates/workloads/src/tomcatv.rs crates/workloads/src/wc.rs crates/workloads/src/xlisp_like.rs

/root/repo/target/debug/deps/ms_workloads-f9fdffbbce4bd29c: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/data.rs crates/workloads/src/eqntott.rs crates/workloads/src/espresso.rs crates/workloads/src/gcc_like.rs crates/workloads/src/sc_like.rs crates/workloads/src/symsearch.rs crates/workloads/src/tomcatv.rs crates/workloads/src/wc.rs crates/workloads/src/xlisp_like.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cmp.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/data.rs:
crates/workloads/src/eqntott.rs:
crates/workloads/src/espresso.rs:
crates/workloads/src/gcc_like.rs:
crates/workloads/src/sc_like.rs:
crates/workloads/src/symsearch.rs:
crates/workloads/src/tomcatv.rs:
crates/workloads/src/wc.rs:
crates/workloads/src/xlisp_like.rs:
