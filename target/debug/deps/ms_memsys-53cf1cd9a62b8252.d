/root/repo/target/debug/deps/ms_memsys-53cf1cd9a62b8252.d: crates/memsys/src/lib.rs crates/memsys/src/arb.rs crates/memsys/src/banks.rs crates/memsys/src/bus.rs crates/memsys/src/cache.rs crates/memsys/src/icache.rs crates/memsys/src/mem.rs

/root/repo/target/debug/deps/ms_memsys-53cf1cd9a62b8252: crates/memsys/src/lib.rs crates/memsys/src/arb.rs crates/memsys/src/banks.rs crates/memsys/src/bus.rs crates/memsys/src/cache.rs crates/memsys/src/icache.rs crates/memsys/src/mem.rs

crates/memsys/src/lib.rs:
crates/memsys/src/arb.rs:
crates/memsys/src/banks.rs:
crates/memsys/src/bus.rs:
crates/memsys/src/cache.rs:
crates/memsys/src/icache.rs:
crates/memsys/src/mem.rs:
