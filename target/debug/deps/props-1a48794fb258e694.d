/root/repo/target/debug/deps/props-1a48794fb258e694.d: tests/props.rs

/root/repo/target/debug/deps/props-1a48794fb258e694: tests/props.rs

tests/props.rs:
