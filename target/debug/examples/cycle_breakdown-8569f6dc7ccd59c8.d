/root/repo/target/debug/examples/cycle_breakdown-8569f6dc7ccd59c8.d: examples/cycle_breakdown.rs

/root/repo/target/debug/examples/cycle_breakdown-8569f6dc7ccd59c8: examples/cycle_breakdown.rs

examples/cycle_breakdown.rs:
