/root/repo/target/debug/examples/cycle_breakdown-eddf4910e70a3d56.d: examples/cycle_breakdown.rs

/root/repo/target/debug/examples/cycle_breakdown-eddf4910e70a3d56: examples/cycle_breakdown.rs

examples/cycle_breakdown.rs:
