/root/repo/target/debug/examples/cfg_walk-acd0b1e83a2549cc.d: examples/cfg_walk.rs

/root/repo/target/debug/examples/cfg_walk-acd0b1e83a2549cc: examples/cfg_walk.rs

examples/cfg_walk.rs:
