/root/repo/target/debug/examples/cfg_walk-6dd6c15e7fdd24b1.d: examples/cfg_walk.rs

/root/repo/target/debug/examples/cfg_walk-6dd6c15e7fdd24b1: examples/cfg_walk.rs

examples/cfg_walk.rs:
