/root/repo/target/debug/examples/quickstart-b28c758034478405.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b28c758034478405: examples/quickstart.rs

examples/quickstart.rs:
