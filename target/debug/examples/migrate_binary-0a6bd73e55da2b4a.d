/root/repo/target/debug/examples/migrate_binary-0a6bd73e55da2b4a.d: examples/migrate_binary.rs

/root/repo/target/debug/examples/migrate_binary-0a6bd73e55da2b4a: examples/migrate_binary.rs

examples/migrate_binary.rs:
