/root/repo/target/debug/examples/annotated_task-2665c2b48744a4b7.d: examples/annotated_task.rs

/root/repo/target/debug/examples/annotated_task-2665c2b48744a4b7: examples/annotated_task.rs

examples/annotated_task.rs:
