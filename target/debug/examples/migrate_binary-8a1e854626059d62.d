/root/repo/target/debug/examples/migrate_binary-8a1e854626059d62.d: examples/migrate_binary.rs

/root/repo/target/debug/examples/migrate_binary-8a1e854626059d62: examples/migrate_binary.rs

examples/migrate_binary.rs:
