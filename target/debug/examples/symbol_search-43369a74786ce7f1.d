/root/repo/target/debug/examples/symbol_search-43369a74786ce7f1.d: examples/symbol_search.rs

/root/repo/target/debug/examples/symbol_search-43369a74786ce7f1: examples/symbol_search.rs

examples/symbol_search.rs:
