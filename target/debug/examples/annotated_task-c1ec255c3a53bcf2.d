/root/repo/target/debug/examples/annotated_task-c1ec255c3a53bcf2.d: examples/annotated_task.rs

/root/repo/target/debug/examples/annotated_task-c1ec255c3a53bcf2: examples/annotated_task.rs

examples/annotated_task.rs:
