/root/repo/target/debug/examples/symbol_search-bee400a7cb58ffbb.d: examples/symbol_search.rs

/root/repo/target/debug/examples/symbol_search-bee400a7cb58ffbb: examples/symbol_search.rs

examples/symbol_search.rs:
