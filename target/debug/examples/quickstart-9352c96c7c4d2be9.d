/root/repo/target/debug/examples/quickstart-9352c96c7c4d2be9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9352c96c7c4d2be9: examples/quickstart.rs

examples/quickstart.rs:
