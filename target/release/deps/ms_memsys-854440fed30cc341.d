/root/repo/target/release/deps/ms_memsys-854440fed30cc341.d: crates/memsys/src/lib.rs crates/memsys/src/arb.rs crates/memsys/src/banks.rs crates/memsys/src/bus.rs crates/memsys/src/cache.rs crates/memsys/src/icache.rs crates/memsys/src/mem.rs

/root/repo/target/release/deps/libms_memsys-854440fed30cc341.rlib: crates/memsys/src/lib.rs crates/memsys/src/arb.rs crates/memsys/src/banks.rs crates/memsys/src/bus.rs crates/memsys/src/cache.rs crates/memsys/src/icache.rs crates/memsys/src/mem.rs

/root/repo/target/release/deps/libms_memsys-854440fed30cc341.rmeta: crates/memsys/src/lib.rs crates/memsys/src/arb.rs crates/memsys/src/banks.rs crates/memsys/src/bus.rs crates/memsys/src/cache.rs crates/memsys/src/icache.rs crates/memsys/src/mem.rs

crates/memsys/src/lib.rs:
crates/memsys/src/arb.rs:
crates/memsys/src/banks.rs:
crates/memsys/src/bus.rs:
crates/memsys/src/cache.rs:
crates/memsys/src/icache.rs:
crates/memsys/src/mem.rs:
