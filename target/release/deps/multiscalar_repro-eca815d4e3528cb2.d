/root/repo/target/release/deps/multiscalar_repro-eca815d4e3528cb2.d: src/lib.rs

/root/repo/target/release/deps/libmultiscalar_repro-eca815d4e3528cb2.rlib: src/lib.rs

/root/repo/target/release/deps/libmultiscalar_repro-eca815d4e3528cb2.rmeta: src/lib.rs

src/lib.rs:
