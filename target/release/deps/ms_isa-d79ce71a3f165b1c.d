/root/repo/target/release/deps/ms_isa-d79ce71a3f165b1c.d: crates/isa/src/lib.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/tags.rs crates/isa/src/task.rs

/root/repo/target/release/deps/libms_isa-d79ce71a3f165b1c.rlib: crates/isa/src/lib.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/tags.rs crates/isa/src/task.rs

/root/repo/target/release/deps/libms_isa-d79ce71a3f165b1c.rmeta: crates/isa/src/lib.rs crates/isa/src/encode.rs crates/isa/src/instr.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/tags.rs crates/isa/src/task.rs

crates/isa/src/lib.rs:
crates/isa/src/encode.rs:
crates/isa/src/instr.rs:
crates/isa/src/op.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
crates/isa/src/tags.rs:
crates/isa/src/task.rs:
