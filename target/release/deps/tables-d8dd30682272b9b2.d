/root/repo/target/release/deps/tables-d8dd30682272b9b2.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-d8dd30682272b9b2: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
