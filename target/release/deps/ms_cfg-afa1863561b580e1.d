/root/repo/target/release/deps/ms_cfg-afa1863561b580e1.d: crates/cfg/src/lib.rs crates/cfg/src/summary.rs crates/cfg/src/taskcheck.rs

/root/repo/target/release/deps/libms_cfg-afa1863561b580e1.rlib: crates/cfg/src/lib.rs crates/cfg/src/summary.rs crates/cfg/src/taskcheck.rs

/root/repo/target/release/deps/libms_cfg-afa1863561b580e1.rmeta: crates/cfg/src/lib.rs crates/cfg/src/summary.rs crates/cfg/src/taskcheck.rs

crates/cfg/src/lib.rs:
crates/cfg/src/summary.rs:
crates/cfg/src/taskcheck.rs:
