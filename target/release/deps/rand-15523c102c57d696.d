/root/repo/target/release/deps/rand-15523c102c57d696.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-15523c102c57d696.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-15523c102c57d696.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
