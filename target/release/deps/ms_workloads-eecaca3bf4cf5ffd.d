/root/repo/target/release/deps/ms_workloads-eecaca3bf4cf5ffd.d: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/data.rs crates/workloads/src/eqntott.rs crates/workloads/src/espresso.rs crates/workloads/src/gcc_like.rs crates/workloads/src/sc_like.rs crates/workloads/src/symsearch.rs crates/workloads/src/tomcatv.rs crates/workloads/src/wc.rs crates/workloads/src/xlisp_like.rs

/root/repo/target/release/deps/libms_workloads-eecaca3bf4cf5ffd.rlib: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/data.rs crates/workloads/src/eqntott.rs crates/workloads/src/espresso.rs crates/workloads/src/gcc_like.rs crates/workloads/src/sc_like.rs crates/workloads/src/symsearch.rs crates/workloads/src/tomcatv.rs crates/workloads/src/wc.rs crates/workloads/src/xlisp_like.rs

/root/repo/target/release/deps/libms_workloads-eecaca3bf4cf5ffd.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/data.rs crates/workloads/src/eqntott.rs crates/workloads/src/espresso.rs crates/workloads/src/gcc_like.rs crates/workloads/src/sc_like.rs crates/workloads/src/symsearch.rs crates/workloads/src/tomcatv.rs crates/workloads/src/wc.rs crates/workloads/src/xlisp_like.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cmp.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/data.rs:
crates/workloads/src/eqntott.rs:
crates/workloads/src/espresso.rs:
crates/workloads/src/gcc_like.rs:
crates/workloads/src/sc_like.rs:
crates/workloads/src/symsearch.rs:
crates/workloads/src/tomcatv.rs:
crates/workloads/src/wc.rs:
crates/workloads/src/xlisp_like.rs:
