/root/repo/target/release/deps/ms_predictor-a8480ac508e5d7eb.d: crates/predictor/src/lib.rs

/root/repo/target/release/deps/libms_predictor-a8480ac508e5d7eb.rlib: crates/predictor/src/lib.rs

/root/repo/target/release/deps/libms_predictor-a8480ac508e5d7eb.rmeta: crates/predictor/src/lib.rs

crates/predictor/src/lib.rs:
