/root/repo/target/release/deps/multiscalar-3c7bfebc350af3b1.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/processor.rs crates/core/src/ring.rs crates/core/src/scalar.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libmultiscalar-3c7bfebc350af3b1.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/processor.rs crates/core/src/ring.rs crates/core/src/scalar.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libmultiscalar-3c7bfebc350af3b1.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/processor.rs crates/core/src/ring.rs crates/core/src/scalar.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/processor.rs:
crates/core/src/ring.rs:
crates/core/src/scalar.rs:
crates/core/src/stats.rs:
