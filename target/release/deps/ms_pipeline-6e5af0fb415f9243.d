/root/repo/target/release/deps/ms_pipeline-6e5af0fb415f9243.d: crates/pipeline/src/lib.rs crates/pipeline/src/exec.rs crates/pipeline/src/fu.rs crates/pipeline/src/regfile.rs crates/pipeline/src/unit.rs

/root/repo/target/release/deps/libms_pipeline-6e5af0fb415f9243.rlib: crates/pipeline/src/lib.rs crates/pipeline/src/exec.rs crates/pipeline/src/fu.rs crates/pipeline/src/regfile.rs crates/pipeline/src/unit.rs

/root/repo/target/release/deps/libms_pipeline-6e5af0fb415f9243.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/exec.rs crates/pipeline/src/fu.rs crates/pipeline/src/regfile.rs crates/pipeline/src/unit.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/exec.rs:
crates/pipeline/src/fu.rs:
crates/pipeline/src/regfile.rs:
crates/pipeline/src/unit.rs:
