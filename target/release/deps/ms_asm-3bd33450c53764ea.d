/root/repo/target/release/deps/ms_asm-3bd33450c53764ea.d: crates/asm/src/lib.rs crates/asm/src/assemble.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/parser.rs

/root/repo/target/release/deps/libms_asm-3bd33450c53764ea.rlib: crates/asm/src/lib.rs crates/asm/src/assemble.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/parser.rs

/root/repo/target/release/deps/libms_asm-3bd33450c53764ea.rmeta: crates/asm/src/lib.rs crates/asm/src/assemble.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/parser.rs

crates/asm/src/lib.rs:
crates/asm/src/assemble.rs:
crates/asm/src/disasm.rs:
crates/asm/src/error.rs:
crates/asm/src/parser.rs:
