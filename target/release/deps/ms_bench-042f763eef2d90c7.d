/root/repo/target/release/deps/ms_bench-042f763eef2d90c7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libms_bench-042f763eef2d90c7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libms_bench-042f763eef2d90c7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
