/root/repo/target/release/examples/cycle_breakdown-052c6df32d5e5409.d: examples/cycle_breakdown.rs

/root/repo/target/release/examples/cycle_breakdown-052c6df32d5e5409: examples/cycle_breakdown.rs

examples/cycle_breakdown.rs:
