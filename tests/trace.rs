//! End-to-end tests of the structured trace layer: the event stream a
//! full workload run produces is deterministic, internally consistent
//! with the simulator's aggregate statistics, and serializes to valid
//! Chrome `trace_event` JSON.

use ms_trace::{ChromeTraceSink, JsonLinesSink, MetricsSink, TeeSink, TraceEvent, VecSink};
use ms_workloads::{by_name, Scale};
use multiscalar::{Processor, SimConfig};

/// A tiny two-task program: one counting task plus a halt task.
const TWO_TASKS: &str = "
main:
.task targets=LOOP,DONE create=$2
LOOP:
    addiu!f $2, $2, 1
    slti    $1, $2, 5
    bne!s   $1, $0, LOOP
.task targets=halt create=
DONE:
    halt
";

fn two_task_prog() -> ms_isa::Program {
    ms_asm::assemble(TWO_TASKS, ms_asm::AsmMode::Multiscalar).unwrap()
}

#[test]
fn event_stream_reconciles_with_run_stats() {
    let w = by_name("Gcc", Scale::Test).unwrap();
    let (stats, sink) =
        w.run_multiscalar_with_sink(SimConfig::multiscalar(8), MetricsSink::new()).unwrap();
    let m = sink.into_report();
    assert_eq!(m.tasks_retired, stats.tasks_retired);
    assert_eq!(m.tasks_squashed, stats.tasks_squashed, "squash events must sum to tasks_squashed");
    assert_eq!(m.control_squash_waves, stats.control_squashes);
    assert_eq!(m.memory_squash_waves, stats.memory_squashes);
    assert_eq!(m.arb_full_squash_waves, stats.arb_squashes);
    assert_eq!(m.arb_violations, stats.arb.violations);
    assert_eq!(m.arb_loads, stats.arb.loads);
    assert_eq!(m.arb_stores, stats.arb.stores);
    assert_eq!(m.arb_forwarded_loads, stats.arb.load_forwards);
    assert_eq!(m.icache_fetches, stats.icache.accesses);
    assert_eq!(m.icache_fetches - m.icache_hits, stats.icache.misses);
    assert_eq!(m.descriptor_fetches, stats.descriptor_cache.0);
    assert_eq!(m.task_len_instrs.sum(), stats.instructions);
    // Every retired/squashed task was assigned exactly once.
    assert_eq!(m.tasks_assigned, m.tasks_retired + m.tasks_squashed);
}

#[test]
fn identical_runs_produce_byte_identical_jsonl() {
    let run = || {
        let w = by_name("Compress", Scale::Test).unwrap();
        let sink = JsonLinesSink::new(Vec::<u8>::new());
        let (_, sink) = w.run_multiscalar_with_sink(SimConfig::multiscalar(4), sink).unwrap();
        let (bytes, err) = sink.into_inner();
        assert!(err.is_none());
        bytes
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "trace streams of identical runs must be byte-identical");
}

#[test]
fn traced_run_matches_untraced_run() {
    // Attaching a sink must never perturb the simulation.
    let w = by_name("Wc", Scale::Test).unwrap();
    let plain = w.run_multiscalar(SimConfig::multiscalar(8)).unwrap();
    let (traced, _) =
        w.run_multiscalar_with_sink(SimConfig::multiscalar(8), MetricsSink::new()).unwrap();
    assert_eq!(plain.cycles, traced.cycles);
    assert_eq!(plain.instructions, traced.instructions);
    assert_eq!(plain.tasks_squashed, traced.tasks_squashed);
    assert_eq!(plain.breakdown, traced.breakdown);
}

#[test]
fn two_task_program_emits_the_expected_lifecycle() {
    let mut p =
        Processor::with_sink(two_task_prog(), SimConfig::multiscalar(4), VecSink::default())
            .unwrap();
    p.run().unwrap();
    let events = p.into_sink().events;
    let assigns = events.iter().filter(|e| matches!(e, TraceEvent::TaskAssign { .. })).count();
    let retires: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TaskRetire { entry, .. } => Some(*entry),
            _ => None,
        })
        .collect();
    assert_eq!(retires.len(), 6, "5 loop iterations + halt task: {events:#?}");
    assert!(assigns >= retires.len());
    // Sequencer events are stamped in non-decreasing cycle order. (Memory
    // events may be stamped at their future access time, so the full
    // stream is only approximately ordered.)
    let seq_cycles: Vec<u64> = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::TaskAssign { .. }
                    | TraceEvent::TaskRetire { .. }
                    | TraceEvent::TaskSquash { .. }
                    | TraceEvent::SquashWave { .. }
                    | TraceEvent::TaskValidate { .. }
            )
        })
        .map(TraceEvent::cycle)
        .collect();
    assert!(seq_cycles.windows(2).all(|w| w[0] <= w[1]), "{seq_cycles:?}");
}

#[test]
fn chrome_trace_of_a_real_run_is_well_formed() {
    let w = by_name("Cmp", Scale::Test).unwrap();
    let sink = TeeSink(MetricsSink::new(), ChromeTraceSink::new(Vec::<u8>::new()));
    let (stats, sink) = w.run_multiscalar_with_sink(SimConfig::multiscalar(8), sink).unwrap();
    let TeeSink(metrics, chrome) = sink;
    let (bytes, err) = chrome.into_inner();
    assert!(err.is_none());
    let text = String::from_utf8(bytes).unwrap();
    assert!(text.starts_with("{\"traceEvents\":["));
    assert!(text.trim_end().ends_with("]}"));
    // Balanced braces/brackets outside strings — cheap structural check.
    let (mut brace, mut bracket) = (0i64, 0i64);
    let mut in_str = false;
    let mut esc = false;
    for c in text.chars() {
        match c {
            _ if esc => esc = false,
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' if !in_str => brace += 1,
            '}' if !in_str => brace -= 1,
            '[' if !in_str => bracket += 1,
            ']' if !in_str => bracket -= 1,
            _ => {}
        }
    }
    assert_eq!((brace, bracket), (0, 0));
    // One complete span per retired or squashed task.
    let spans = text.matches("\"ph\":\"X\"").count() as u64;
    assert_eq!(spans, stats.tasks_retired + stats.tasks_squashed);
    assert_eq!(metrics.report().tasks_retired, stats.tasks_retired);
}
