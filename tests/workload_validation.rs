//! Every benchmark validates its architectural results against the Rust
//! reference implementation under every processor configuration class.
//!
//! This is the strongest end-to-end statement the suite makes: the
//! multiscalar machinery (speculative tasks, register ring, ARB, squash
//! and recovery) is *functionally invisible* — parallel execution always
//! produces the sequential results.

use ms_workloads::{suite, Scale};
use multiscalar::SimConfig;

#[test]
fn scalar_baseline_validates_all_workloads() {
    for w in suite(Scale::Test) {
        w.run_scalar(SimConfig::scalar()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn four_unit_multiscalar_validates_all_workloads() {
    for w in suite(Scale::Test) {
        w.run_multiscalar(SimConfig::multiscalar(4)).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn eight_unit_multiscalar_validates_all_workloads() {
    for w in suite(Scale::Test) {
        w.run_multiscalar(SimConfig::multiscalar(8)).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn two_way_out_of_order_validates_all_workloads() {
    for w in suite(Scale::Test) {
        w.run_multiscalar(SimConfig::multiscalar(4).issue(2).out_of_order(true))
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn two_unit_and_single_unit_multiscalar_validate() {
    // Degenerate unit counts exercise ring wrap-around and head==tail.
    for w in suite(Scale::Test) {
        for units in [1usize, 2] {
            w.run_multiscalar(SimConfig::multiscalar(units))
                .unwrap_or_else(|e| panic!("{} @{units}: {e}", w.name));
        }
    }
}

#[test]
fn instruction_counts_never_shrink_in_multiscalar_mode() {
    // Table 2's invariant: the annotated binary executes at least as many
    // instructions as the plain one.
    for w in suite(Scale::Test) {
        let s = w.run_scalar(SimConfig::scalar()).unwrap();
        let m = w.run_multiscalar(SimConfig::multiscalar(4)).unwrap();
        assert!(
            m.instructions >= s.instructions,
            "{}: ms {} < scalar {}",
            w.name,
            m.instructions,
            s.instructions
        );
        // And the overhead stays in a sane band (paper: 1.4%..17.3%).
        let pct = 100.0 * (m.instructions - s.instructions) as f64 / s.instructions as f64;
        assert!(pct < 30.0, "{}: overhead {pct:.1}% is out of band", w.name);
    }
}

#[test]
fn speedup_ordering_matches_the_paper_shape() {
    // The qualitative result of Table 3: cmp/tomcatv/wc/Example speed up
    // well; xlisp does not.
    let speedup = |name: &str| {
        let w = ms_workloads::by_name(name, Scale::Test).unwrap();
        let s = w.run_scalar(SimConfig::scalar()).unwrap();
        let m = w.run_multiscalar(SimConfig::multiscalar(8)).unwrap();
        s.cycles as f64 / m.cycles as f64
    };
    let cmp = speedup("Cmp");
    let xlisp = speedup("Xlisp");
    let wc = speedup("Wc");
    assert!(cmp > 2.0, "cmp should scale, got {cmp:.2}");
    assert!(wc > 1.3, "wc should scale, got {wc:.2}");
    assert!(xlisp < 1.5, "xlisp must not scale, got {xlisp:.2}");
    assert!(cmp > xlisp);
}

#[test]
fn taskcheck_accepts_every_builtin_workload() {
    // The static annotation checker must agree with the hand-written
    // annotations of the whole suite: zero error-severity diagnostics.
    use ms_asm::AsmMode;
    use ms_cfg::{check_program, Severity};
    for w in suite(Scale::Test) {
        let prog = w.assemble(AsmMode::Multiscalar).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let report = check_program(&prog);
        let errors: Vec<_> = report.of_severity(Severity::Error).collect();
        assert!(
            errors.is_empty(),
            "{}: taskcheck errors:\n{}",
            w.name,
            errors.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
