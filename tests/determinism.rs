//! The simulator is deterministic (a total order of events exists in a
//! cycle-accurate model) and architecturally invariant across machine
//! configurations: changing unit counts, widths or issue order changes
//! *timing*, never *results*.

use ms_asm::AsmMode;
use ms_workloads::{by_name, suite, Scale};
use multiscalar::{Processor, SimConfig};

#[test]
fn repeated_runs_are_bit_identical() {
    let run = |ooo: bool| {
        let w = by_name("Gcc", Scale::Test).unwrap();
        let prog = w.assemble(AsmMode::Multiscalar).unwrap();
        let mut p =
            Processor::new(prog, SimConfig::multiscalar(8).issue(2).out_of_order(ooo)).unwrap();
        let st = p.run().unwrap();
        (
            st.cycles,
            st.instructions,
            st.tasks_squashed,
            st.control_squashes,
            st.memory_squashes,
            st.predictions,
            st.correct_predictions,
            st.breakdown,
        )
    };
    assert_eq!(run(false), run(false));
    assert_eq!(run(true), run(true));
}

#[test]
fn unit_count_never_changes_committed_instruction_count() {
    // The committed instruction stream is the architectural execution; it
    // must not depend on the machine's parallelism.
    for w in suite(Scale::Test) {
        let mut counts = Vec::new();
        for units in [1usize, 3, 4, 8] {
            let m = w
                .run_multiscalar(SimConfig::multiscalar(units))
                .unwrap_or_else(|e| panic!("{} @{units}: {e}", w.name));
            counts.push(m.instructions);
        }
        assert!(
            counts.windows(2).all(|p| p[0] == p[1]),
            "{}: committed counts varied with unit count: {counts:?}",
            w.name
        );
    }
}

#[test]
fn issue_width_and_order_never_change_results() {
    // Validation inside run_multiscalar checks memory against the
    // reference; this asserts it holds across the full config matrix.
    let w = by_name("Espresso", Scale::Test).unwrap();
    for width in [1usize, 2] {
        for ooo in [false, true] {
            for units in [2usize, 4, 8] {
                w.run_multiscalar(SimConfig::multiscalar(units).issue(width).out_of_order(ooo))
                    .unwrap_or_else(|e| panic!("w{width} ooo{ooo} u{units}: {e}"));
            }
        }
    }
}

#[test]
fn cycle_accounting_is_conservative() {
    // Unit-cycles across all classes must equal units x cycles (every
    // unit-cycle is classified exactly once).
    for name in ["Wc", "Gcc", "Xlisp"] {
        let w = by_name(name, Scale::Test).unwrap();
        let prog = w.assemble(AsmMode::Multiscalar).unwrap();
        let units = 4u64;
        let mut p = Processor::new(prog, SimConfig::multiscalar(units as usize)).unwrap();
        let st = p.run().unwrap();
        assert_eq!(
            st.breakdown.total(),
            units * st.cycles,
            "{name}: breakdown does not cover all unit-cycles"
        );
    }
}

#[test]
fn retirement_log_is_sequential_and_complete() {
    let w = by_name("Cmp", Scale::Test).unwrap();
    let prog = w.assemble(AsmMode::Multiscalar).unwrap();
    let mut p = Processor::new(prog, SimConfig::multiscalar(4)).unwrap();
    let st = p.run().unwrap();
    let log = p.retirement_log();
    assert_eq!(log.len() as u64, st.tasks_retired);
    assert!(log.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    assert_eq!(log.iter().map(|r| r.instructions).sum::<u64>(), st.instructions);
}
