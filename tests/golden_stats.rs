//! Golden `RunStats` regression test.
//!
//! Performance work on the simulator (predecode caches, page-table
//! memory, allocation-free stepping) is only allowed to change *wall
//! time* — simulated behaviour must be bit-identical. This test pins
//! the complete `RunStats` (cycles, per-cycle breakdown, squash and
//! prediction counters, cache/bus/ARB statistics) for every suite
//! workload across the machine classes the paper evaluates:
//!
//! * the scalar baseline,
//! * 4-unit and 8-unit multiscalar, in-order 1-way (Table 3's grid),
//! * 4-unit multiscalar, out-of-order 2-way (Table 4's hardest class,
//!   which exercises the OoO hazard-check path).
//!
//! The golden file is `tests/golden/run_stats.txt`: one line per
//! (workload, machine) point, `<workload> <machine> <stats-json>`,
//! where the JSON is `ms_sweep::statsio::stats_to_json`'s fixed-order
//! rendering. Any divergence is a behaviour change, not a speedup.
//!
//! Every point additionally runs in both clocking modes — event-driven
//! skip-ahead (the default) and plain ticked (`skip_ahead(false)`) —
//! and the two serialized `RunStats` must match byte-for-byte before
//! either is compared against the golden file. This is the equivalence
//! gate for the skip-ahead scheduler (DESIGN.md §13).
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! MS_BLESS_GOLDEN=1 cargo test --test golden_stats
//! ```

use ms_sweep::statsio::stats_to_json;
use ms_workloads::{suite, Scale};
use multiscalar::SimConfig;

/// The machine classes pinned by the golden file.
fn machines() -> Vec<(&'static str, SimConfig, bool)> {
    vec![
        ("scalar", SimConfig::scalar(), false),
        ("ms4", SimConfig::multiscalar(4), true),
        ("ms8", SimConfig::multiscalar(8), true),
        ("ms4-w2-ooo", SimConfig::multiscalar(4).issue(2).out_of_order(true), true),
    ]
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/run_stats.txt")
}

fn current_snapshot() -> String {
    let mut out = String::new();
    for w in suite(Scale::Test) {
        for (name, cfg, multi) in machines() {
            // Every point runs twice: with the event-driven skip-ahead
            // scheduler (the default) and in plain ticked mode. The two
            // serialized stats must be byte-identical — skip-ahead is a
            // host-time optimization and must be observationally
            // invisible (DESIGN.md §13) — and the shared rendering is
            // what the golden file pins.
            let run = |cfg: SimConfig| {
                if multi { w.run_multiscalar(cfg) } else { w.run_scalar(cfg) }
                    .unwrap_or_else(|e| panic!("{} on {name}: {e}", w.name))
            };
            let skipped = stats_to_json(&run(cfg.skip_ahead(true)));
            let ticked = stats_to_json(&run(cfg.skip_ahead(false)));
            assert_eq!(
                skipped, ticked,
                "{} on {name}: skip-ahead changed simulated behaviour",
                w.name
            );
            out.push_str(w.name);
            out.push(' ');
            out.push_str(name);
            out.push(' ');
            out.push_str(&skipped);
            out.push('\n');
        }
    }
    out
}

#[test]
fn run_stats_match_golden_snapshot() {
    let snapshot = current_snapshot();
    let path = golden_path();
    if std::env::var_os("MS_BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &snapshot).expect("writing golden file");
        eprintln!("blessed {} ({} lines)", path.display(), snapshot.lines().count());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `MS_BLESS_GOLDEN=1 cargo test --test golden_stats`",
            path.display()
        )
    });
    if golden == snapshot {
        return;
    }
    // Report the first diverging line precisely — "cycles changed on
    // Compress ms8" is actionable, a 40-line diff dump is not.
    for (i, (g, s)) in golden.lines().zip(snapshot.lines()).enumerate() {
        assert_eq!(
            g,
            s,
            "golden RunStats diverged at line {} — simulated behaviour changed",
            i + 1
        );
    }
    assert_eq!(
        golden.lines().count(),
        snapshot.lines().count(),
        "golden file has a different number of (workload, machine) points"
    );
    unreachable!("texts differ but no line-level divergence found");
}
