//! Cycle-accounting conservation across the fuzz corpus, plus a golden
//! CPI-stack fixture.
//!
//! The accounting subsystem's contract is a hard conservation
//! invariant: every (unit, cycle) of a run is charged to exactly one
//! bucket — issued, or one `StallReason` — so for any program and any
//! machine shape,
//!
//! ```text
//! issued + Σ stalls == cycles × units
//! ```
//!
//! globally, per unit, and with the per-task rows never exceeding their
//! unit's totals. Workload-based tests alone would only exercise the
//! control flow our hand-written benchmarks happen to take, so this
//! property is driven by the `ms-fuzz` program generator across the
//! same configuration grid the differential fuzzer uses (ms1, ms2,
//! ms4-ooo2, ms8-ring1).
//!
//! The accountant must also be purely observational: a run with
//! accounting enabled must report the same cycles and instructions as
//! the default `NoAccounting` run of the same program.
//!
//! The golden fixture (`tests/golden/cpi_stack.txt`) pins the complete
//! `CpiStack::to_json()` rendering for one workload so the bucket
//! attribution itself — not just its sum — is a regression surface.
//! Bless after an intentional behaviour change with:
//!
//! ```text
//! MS_BLESS_GOLDEN=1 cargo test --test cpi_conservation
//! ```

use ms_asm::{assemble, AsmMode};
use ms_fuzz::diff::{config_points, ValidateOpts};
use ms_fuzz::gen;
use ms_trace::{CpiStack, StallReason};
use multiscalar::{CpiAccountant, Processor, SimConfig};

fn opts() -> ValidateOpts {
    ValidateOpts { max_cycles: 1_000_000, watchdog: 200_000 }
}

/// Asserts every form of the conservation invariant on one stack.
fn assert_conserved(label: &str, cpi: &CpiStack) {
    let stalls: u64 = cpi.stall_cycles.iter().sum();
    assert_eq!(
        cpi.issued_cycles + stalls,
        cpi.cycles * cpi.units as u64,
        "{label}: issued + Σ stalls != cycles × units"
    );
    assert!(cpi.conservation_holds(), "{label}: conservation_holds() disagrees");
    assert_eq!(cpi.per_unit.len(), cpi.units, "{label}: wrong per-unit row count");
    for (u, row) in cpi.per_unit.iter().enumerate() {
        assert_eq!(
            row.total(),
            cpi.cycles,
            "{label}: unit {u} accounted a different number of cycles than the run took"
        );
    }
    for r in StallReason::ALL {
        let per_unit: u64 = cpi.per_unit.iter().map(|row| row.stall_cycles[r.index()]).sum();
        assert_eq!(
            per_unit,
            cpi.stall_cycles[r.index()],
            "{label}: aggregate {} bucket disagrees with the per-unit sum",
            r.as_str()
        );
    }
    // Retired tasks partition a subset of each unit's cycles: their
    // charges can never exceed what the unit accumulated overall.
    for (u, row) in cpi.per_unit.iter().enumerate() {
        let tasks: Vec<_> = cpi.per_task.iter().filter(|t| t.unit == u).collect();
        let task_issued: u64 = tasks.iter().map(|t| t.issued_cycles).sum();
        assert!(task_issued <= row.issued_cycles, "{label}: unit {u} task rows over-charge issued");
        for r in StallReason::ALL {
            let task_stall: u64 = tasks.iter().map(|t| t.stall_cycles[r.index()]).sum();
            assert!(
                task_stall <= row.stall_cycles[r.index()],
                "{label}: unit {u} task rows over-charge {}",
                r.as_str()
            );
        }
    }
}

#[test]
fn fuzz_corpus_conserves_unit_cycles() {
    let opts = opts();
    let points = config_points(&opts);
    for seed in 0..12u64 {
        let src = gen::render(&gen::generate(seed, false));
        let prog = assemble(&src, AsmMode::Multiscalar)
            .unwrap_or_else(|e| panic!("seed {seed}: honest program failed to assemble: {e}"));
        for (name, cfg) in &points {
            let label = format!("seed {seed} on {name}");
            let mut plain = Processor::new(prog.clone(), *cfg)
                .unwrap_or_else(|e| panic!("{label}: build: {e}"));
            let base = plain.run().unwrap_or_else(|e| panic!("{label}: run: {e}"));

            let mut acct = Processor::with_accountant(prog.clone(), *cfg, CpiAccountant::new())
                .unwrap_or_else(|e| panic!("{label}: build (accounted): {e}"));
            let stats = acct.run().unwrap_or_else(|e| panic!("{label}: run (accounted): {e}"));

            // Accounting is observational — same machine, same run.
            assert_eq!(stats.cycles, base.cycles, "{label}: accounting changed cycle count");
            assert_eq!(
                stats.instructions, base.instructions,
                "{label}: accounting changed instruction count"
            );
            assert!(base.cpi.is_none(), "{label}: NoAccounting run grew a CPI stack");

            let cpi = stats.cpi.as_ref().unwrap_or_else(|| panic!("{label}: no CPI stack"));
            assert_eq!(cpi.units, cfg.units, "{label}: stack has wrong unit count");
            assert_eq!(cpi.cycles, stats.cycles, "{label}: stack has wrong cycle count");
            assert_eq!(
                cpi.instructions, stats.instructions,
                "{label}: stack has wrong instruction count"
            );
            assert_conserved(&label, cpi);
        }
    }
}

#[test]
fn workload_suite_conserves_unit_cycles() {
    for w in ms_workloads::suite(ms_workloads::Scale::Test) {
        for units in [1usize, 4, 8] {
            let cfg = SimConfig::multiscalar(units);
            let label = format!("{} on ms{units}", w.name);
            // Both clocking modes: skip-ahead bulk-charges whole quiet
            // spans (`charge_stall_n`), ticked charges cycle by cycle.
            // Conservation must hold either way, and the two complete
            // stacks — every bucket, per unit and per task — must be
            // identical (DESIGN.md §13).
            let stats = w
                .run_multiscalar_with_accountant(cfg.skip_ahead(true), CpiAccountant::new())
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let ticked = w
                .run_multiscalar_with_accountant(cfg.skip_ahead(false), CpiAccountant::new())
                .unwrap_or_else(|e| panic!("{label} (ticked): {e}"));
            let cpi = stats.cpi.as_ref().unwrap_or_else(|| panic!("{label}: no CPI stack"));
            assert_conserved(&label, cpi);
            let cpi_ticked =
                ticked.cpi.as_ref().unwrap_or_else(|| panic!("{label}: no ticked CPI stack"));
            assert_eq!(
                cpi.to_json(),
                cpi_ticked.to_json(),
                "{label}: skip-ahead changed the CPI stack"
            );
        }
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/cpi_stack.txt")
}

/// Pins the complete bucket attribution for Wc on the 4-unit machine.
/// The snapshot is taken with skip-ahead on (the default) after checking
/// it renders identically to a ticked run, so the fixture also gates the
/// skip scheduler's bulk charging.
#[test]
fn cpi_stack_matches_golden_fixture() {
    let w = ms_workloads::by_name("Wc", ms_workloads::Scale::Test).expect("Wc exists");
    let cfg = SimConfig::multiscalar(4);
    let stats = w
        .run_multiscalar_with_accountant(cfg.skip_ahead(true), CpiAccountant::new())
        .expect("Wc runs");
    let ticked = w
        .run_multiscalar_with_accountant(cfg.skip_ahead(false), CpiAccountant::new())
        .expect("Wc runs ticked");
    let mut snapshot = stats.cpi.expect("accounted run has a stack").to_json();
    assert_eq!(
        snapshot,
        ticked.cpi.expect("ticked run has a stack").to_json(),
        "skip-ahead changed the golden CPI stack"
    );
    snapshot.push('\n');

    let path = golden_path();
    if std::env::var_os("MS_BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &snapshot).expect("writing golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `MS_BLESS_GOLDEN=1 cargo test --test \
             cpi_conservation`",
            path.display()
        )
    });
    assert_eq!(golden, snapshot, "CPI attribution diverged — cycle accounting changed");
}
