//! Property-based tests over the core invariants:
//!
//! * ISA encode/decode round-trips for every instruction shape,
//! * register-mask set algebra,
//! * the ARB against a sequential-memory oracle,
//! * `li` constant reconstruction through the assembler,
//! * end-to-end: randomly generated task loops produce identical
//!   architectural results on the scalar baseline and on multiscalar
//!   processors of every size.

use ms_asm::{assemble, AsmMode};
use ms_isa::{
    decode, encode, FpArithKind, FpCmpCond, Instr, MemWidth, Op, Prec, Reg, RegList, RegMask,
    StopCond, TagBits,
};
use ms_memsys::{Arb, Memory};
use multiscalar::{Processor, ScalarProcessor, SimConfig};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0usize..64).prop_map(|i| Reg::from_index(i).unwrap())
}

fn any_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::B), Just(MemWidth::H), Just(MemWidth::W), Just(MemWidth::D)]
}

fn any_op() -> impl Strategy<Value = Op> {
    let r = any_reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Op::Addu { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Op::Subu { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Op::Xor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Op::Mul { rd, rs, rt }),
        (r(), r(), -2048i32..=2047).prop_map(|(rt, rs, imm)| Op::Addiu { rt, rs, imm }),
        (r(), r(), 0i32..=4095).prop_map(|(rt, rs, imm)| Op::Ori { rt, rs, imm }),
        (r(), r(), 0u8..=63).prop_map(|(rd, rt, sh)| Op::Sll { rd, rt, sh }),
        (r(), -131072i32..=131071).prop_map(|(rt, imm)| Op::Lui { rt, imm }),
        (any_width(), any::<bool>(), r(), r(), -2048i32..=2047).prop_map(
            |(width, signed, rt, base, off)| Op::Load {
                width,
                // A doubleword load has no signedness; its canonical form
                // is `signed: true`.
                signed: signed || width == MemWidth::D,
                rt,
                base,
                off
            }
        ),
        (any_width(), r(), r(), -2048i32..=2047).prop_map(|(width, rt, base, off)| Op::Store {
            width,
            rt,
            base,
            off
        }),
        (r(), r(), -2048i32..=2047).prop_map(|(rs, rt, off)| Op::Beq { rs, rt, off }),
        (r(), -2048i32..=2047).prop_map(|(rs, off)| Op::Bgez { rs, off }),
        (0u32..(1 << 22)).prop_map(|w| Op::J { target: w * 4 }),
        (0u32..(1 << 22)).prop_map(|w| Op::Jal { target: w * 4 }),
        r().prop_map(|rs| Op::Jr { rs }),
        (r(), r(), r()).prop_map(|(fd, fs, ft)| Op::FpArith {
            kind: FpArithKind::Mul,
            prec: Prec::D,
            fd,
            fs,
            ft
        }),
        (r(), r(), r()).prop_map(|(rd, fs, ft)| Op::FpCmp {
            cond: FpCmpCond::Le,
            prec: Prec::S,
            rd,
            fs,
            ft
        }),
        proptest::collection::vec((1usize..64).prop_map(|i| Reg::from_index(i).unwrap()), 1..=3)
            .prop_map(|regs| Op::Release { regs: RegList::from_slice(&regs) }),
        Just(Op::Halt),
        Just(Op::Nop),
    ]
}

fn any_tags() -> impl Strategy<Value = TagBits> {
    (
        any::<bool>(),
        prop_oneof![
            Just(StopCond::None),
            Just(StopCond::Always),
            Just(StopCond::IfTaken),
            Just(StopCond::IfNotTaken)
        ],
    )
        .prop_map(|(forward, stop)| TagBits { forward, stop })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_round_trips(op in any_op(), tags in any_tags()) {
        let instr = Instr { op, tags };
        let (word, tag) = encode(&instr).expect("in-range instruction encodes");
        let back = decode(word, tag).expect("decodes");
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn regmask_set_algebra(a in any::<u64>(), b in any::<u64>(), i in 0usize..64) {
        let (ma, mb) = (RegMask::from_bits(a), RegMask::from_bits(b));
        let r = Reg::from_index(i).unwrap();
        prop_assert_eq!(ma.union(mb).bits(), a | b);
        prop_assert_eq!(ma.intersect(mb).bits(), a & b);
        prop_assert_eq!(ma.difference(mb).bits(), a & !b);
        prop_assert_eq!(ma.contains(r), a & (1 << i) != 0);
        prop_assert_eq!(ma.len(), a.count_ones());
        // Iteration visits exactly the members, in order.
        let collected: RegMask = ma.iter().collect();
        prop_assert_eq!(collected.bits(), a);
    }

    #[test]
    fn li_reconstructs_any_30_bit_constant(v in -(1i64 << 29)..(1i64 << 29)) {
        let src = format!("main:\n li $2, {v}\n sd $2, 0($3)\n halt\n");
        let p = assemble(&src, AsmMode::Scalar).expect("assembles");
        // Execute just the li semantics through the functional core.
        let mut val = 0u64;
        for instr in &p.text {
            match instr.op {
                Op::Addiu { rt, imm, .. } if rt == Reg::int(2) => val = imm as i64 as u64,
                Op::Lui { rt, imm } if rt == Reg::int(2) => val = ((imm as i64) << 12) as u64,
                Op::Ori { rt, imm, .. } if rt == Reg::int(2) => val |= imm as u32 as u64,
                _ => {}
            }
        }
        prop_assert_eq!(val, v as u64);
    }

    #[test]
    fn wide_release_disassembly_round_trips(
        regs in proptest::collection::vec(1usize..64, 1..=8),
        stop in prop_oneof![Just(""), Just("!s")],
    ) {
        // `release` with more than RegList::CAPACITY registers is chunked
        // into several instructions (tags on the last); the disassembler's
        // output must reassemble to the identical binary.
        let list =
            regs.iter().map(|&i| Reg::from_index(i).unwrap().to_string()).collect::<Vec<_>>();
        let create: RegMask = regs.iter().map(|&i| Reg::from_index(i).unwrap()).collect();
        let src = format!(
            ".text\nmain:\n.task targets=halt create={create}\nA:\n    release{stop} {}\n    halt\n",
            list.join(", ")
        );
        let p1 = assemble(&src, AsmMode::Multiscalar).expect("assembles");
        let regen = ms_asm::program_to_source(&p1);
        let p2 = assemble(&regen, AsmMode::Multiscalar)
            .unwrap_or_else(|e| panic!("regenerated source fails: {e}\n{regen}"));
        prop_assert_eq!(&p1.text, &p2.text, "text differs\n{}", regen);
        prop_assert_eq!(&p1.tasks, &p2.tasks);
    }
}

/// Sequential oracle for the ARB: per-stage write buffers over memory,
/// reads resolved in task order.
#[derive(Default)]
struct Oracle {
    // (stage, addr) -> byte
    writes: std::collections::HashMap<(usize, u32), u8>,
}

impl Oracle {
    fn store(&mut self, stage: usize, addr: u32, size: u32, value: u64) {
        for i in 0..size {
            self.writes.insert((stage, addr + i), (value >> (8 * i)) as u8);
        }
    }

    fn load(&self, stage: usize, addr: u32, size: u32, mem: &Memory) -> u64 {
        let mut v = 0u64;
        for i in 0..size {
            let a = addr + i;
            let mut byte = None;
            for s in (0..=stage).rev() {
                if let Some(&b) = self.writes.get(&(s, a)) {
                    byte = Some(b);
                    break;
                }
            }
            v |= (byte.unwrap_or_else(|| mem.read_u8(a)) as u64) << (8 * i);
        }
        v
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any interleaving of loads and stores issued in task order
    /// (earlier stages never issue after later stages touch the same
    /// data — the violation-free schedule), ARB loads equal the oracle.
    #[test]
    fn arb_matches_sequential_oracle_on_ordered_schedules(
        ops in proptest::collection::vec(
            (0usize..4, any::<bool>(), 0u32..64, 1u32..=8, any::<u64>()),
            1..60
        )
    ) {
        let mut arb = Arb::new(4, 2, 256);
        let mut mem = Memory::new();
        for a in 0..80u32 {
            mem.write_u8(a, a as u8);
        }
        let mut oracle = Oracle::default();
        // Sort by stage so every access happens in task order: no
        // violations possible, loads must match the oracle exactly.
        let mut ops = ops;
        ops.sort_by_key(|&(stage, ..)| stage);
        for (stage, is_store, addr, size, value) in ops {
            let size = size.min(8);
            if is_store {
                let v = arb.store(stage, addr, size, value, 4).expect("capacity");
                prop_assert!(v.is_empty(), "ordered schedule must not violate");
                oracle.store(stage, addr, size, value);
            } else {
                let got = arb.load(stage, addr, size, &mem).expect("capacity");
                let want = oracle.load(stage, addr, size, &mem);
                prop_assert_eq!(got.value, want);
            }
        }
    }

    /// A later-task load followed by an earlier-task store to overlapping
    /// bytes is always reported as a violation of the loading task.
    #[test]
    fn arb_always_detects_reordered_conflicts(
        addr in 0u32..32,
        lsize in 1u32..=8,
        ssize in 1u32..=8,
        lstage in 1usize..4,
    ) {
        let mut arb = Arb::new(4, 2, 256);
        let mem = Memory::new();
        let _ = arb.load(lstage, addr, lsize, &mem).unwrap();
        // Head stores over the loaded bytes.
        let v = arb.store(0, addr, ssize, 0xff, 4).unwrap();
        prop_assert!(v.contains(&lstage), "violation of stage {} missing: {:?}", lstage, v);
    }
}

/// Generates a random loop body of register arithmetic, wraps it in the
/// canonical task structure, and checks scalar/multiscalar equivalence.
fn random_loop_program(ops: &[(u8, u8, u8, u8)], iters: u32) -> String {
    use std::fmt::Write;
    let mut body = String::new();
    for &(kind, d, a, b) in ops {
        let rd = 8 + (d % 6);
        let ra = 8 + (a % 6);
        let rb = 8 + (b % 6);
        let line = match kind % 5 {
            0 => format!("    addu ${rd}, ${ra}, ${rb}\n"),
            1 => format!("    subu ${rd}, ${ra}, ${rb}\n"),
            2 => format!("    xor  ${rd}, ${ra}, ${rb}\n"),
            3 => format!("    mul  ${rd}, ${ra}, ${rb}\n"),
            _ => format!("    addiu ${rd}, ${ra}, {}\n", (b as i32) - 128),
        };
        let _ = write!(body, "{line}");
    }
    format!(
        "
.data
out: .space 64
.text
main:
.task targets=LOOP create=$16,$20,$8,$9,$10,$11,$12,$13
INIT:
    li!f $16, {iters}
    li!f $20, 0
    li!f $8, 1
    li!f $9, 2
    li!f $10, 3
    li!f $11, 5
    li!f $12, 7
    li!f $13, 11
    b!s  LOOP
; The loop body writes a subset of $8-$13; the create mask is the
; conservative superset and end-of-task auto-release covers the rest.
.task targets=LOOP,FIN create=$20,$8,$9,$10,$11,$12,$13
LOOP:
    addiu!f $20, $20, 1
{body}
    bne!s $20, $16, LOOP
.task targets=halt create=
FIN:
    la $21, out
    sd $8, 0($21)
    sd $9, 8($21)
    sd $10, 16($21)
    sd $11, 24($21)
    sd $12, 32($21)
    sd $13, 40($21)
    halt
"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_task_loops_match_scalar_execution(
        ops in proptest::collection::vec(any::<(u8, u8, u8, u8)>(), 1..12),
        iters in 1u32..20,
        units in 2usize..=8,
    ) {
        let src = random_loop_program(&ops, iters);
        let sc = assemble(&src, AsmMode::Scalar).expect("scalar assembles");
        let ms = assemble(&src, AsmMode::Multiscalar).expect("ms assembles");
        let mut s = ScalarProcessor::new(sc, SimConfig::scalar()).expect("scalar");
        s.run().expect("scalar run");
        let mut p = Processor::new(ms.clone(), SimConfig::multiscalar(units)).expect("ms");
        p.run().expect("ms run");
        let out = ms.symbol("out").unwrap();
        for slot in 0..6u32 {
            prop_assert_eq!(
                p.memory().read_le(out + 8 * slot, 8),
                s.memory().read_le(out + 8 * slot, 8),
                "slot {} differs (units={})", slot, units
            );
        }
    }
}
