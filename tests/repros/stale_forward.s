; Minimal repro for the stale-forward annotation bug class the fuzzer's
; adversarial mode seeds (and real annotation passes can emit): the
; forward bit sits on an *earlier* write of $2, the later write never
; reaches successors (one send per register per task), and the program
; silently computes 1 where the scalar reference computes 2.
;
; `ms-cfg::check_program` must reject this statically: the write at A+4
; makes the forwarded value provably stale on every path.
.data
out: .space 8

.text
main:
.task targets=A create=$9
T0:
    la!f $9, out
    b!s A
.task targets=B create=$2
A:
    li!f $2, 1
    addiu $2, $2, 1
    b!s B
.task targets=halt create=
B:
    sd $2, 0($9)
    halt
