; Minimized by the msfuzz delta-debugging shrinker from
; `msfuzz --repro-seed 4298001007915928899` (corpus `--seed 0xF00D`,
; case #36).
;
; Repro for the out-of-order release RAW bug: `Op::uses()` declared no
; source registers for `release`, so with `out_of_order(true)` the
; hazard check let `release $2, $3` issue before the older in-flight
; writes to $2/$3 inside the `jal H0` callee. The release then
; broadcast the *inbound* (stale) $2 to every later loop iteration and
; the final register file ended with $2 = 0 where the scalar reference
; has 1. In-order configurations masked the bug; it needed >= 4 units
; so a full loop iteration ran per unit.
.data
arr: .word 841997033, 138924211, 428285726, 2093754970, 486485115, 524687602, 1779769724, 2302805527, 2262571532, 2503337760, 2778311057, 1029382438, 1795651563, 3453223691, 2551719817, 2215886786, 3097643611, 1272986478, 405359025, 3155226496, 1352862238, 4054015421, 1978665544, 3737702784, 408708687, 1052176062, 1767908138, 363483250, 74792093, 3052387733, 510508359, 1001484695
out: .space 128

.text
main:
.task targets=T1 create=$8,$9,$10,$11,$12,$13,$14,$15,$16,$20,$24,$25
T0:
    la!f $24, arr
    la!f $25, out
    li!f $8, -1773
    li!f $9, -1880
    li!f $10, -1315
    li!f $11, -292
    li!f $12, -13
    li!f $13, -708
    li!f $14, -596
    li!f $15, 684
    li!f $20, 0
    li!f $16, 4
    b!s T1
.task targets=T1,T2 create=$2,$3,$11,$14,$20,$31
T1:
    addiu!f $20, $20, 1
    or!f $11, $10, $14
    jal H0
    lbu!f $14, 92($24)
    release $2, $3
    bne!s $20, $16, T1
.task targets=halt create=
T2:
    sd $8, 0($25)
    sd $9, 8($25)
    sd $10, 16($25)
    sd $11, 24($25)
    sd $12, 32($25)
    sd $13, 40($25)
    sd $14, 48($25)
    sd $15, 56($25)
    sd $20, 64($25)
    halt
H0:
    subu $2, $13, $13
    xor $3, $2, $9
    sltu $2, $2, $11
    jr $31
