//! Differential validation of the automatic task partitioner.
//!
//! The partitioner (ms-cfg) takes a *plain scalar* program and derives
//! task descriptors, stop bits, forward bits and releases on its own.
//! These tests state its two proof obligations end to end:
//!
//! 1. every emitted program passes the static checker with zero errors,
//! 2. the partitioned program computes byte-identical architectural
//!    results to the scalar binary it was derived from — final data
//!    memory, final registers (except `$31`, which shifts with inserted
//!    instructions) — at one-unit, out-of-order and ring configurations,
//!    with retire counts agreeing across all multiscalar configs.
//!
//! Inputs come from two corpora: the fuzz generator (scalar-stripped
//! honest programs) and the ten built-in workloads.

use ms_asm::{assemble, AsmMode};
use ms_cfg::{check_program, partition_source, PartitionPolicy};
use ms_fuzz::diff::{data_window, partition_config_points, validate_pair, ValidateOpts};
use ms_fuzz::gen::{generate, render};
use ms_workloads::{suite, Scale};

/// The policy points every corpus program is partitioned at: the
/// default, a fine-grained size cap, call splitting, and a bare point
/// with no forwards or releases (pure auto-release communication).
fn policy_points() -> Vec<PartitionPolicy> {
    vec![
        PartitionPolicy::default(),
        PartitionPolicy { max_task_instrs: 4, ..Default::default() },
        PartitionPolicy { call_split: true, ..Default::default() },
        PartitionPolicy {
            forward: false,
            releases: false,
            loop_heads: false,
            ..Default::default()
        },
    ]
}

/// Partitions `src` under `policy` and validates the result against the
/// scalar binary of the *original* source.
fn partition_and_validate(name: &str, src: &str, policy: &PartitionPolicy) {
    let part = partition_source(src, policy)
        .unwrap_or_else(|e| panic!("{name} [{}]: partition failed: {e}", policy.stable_key()));
    let report = check_program(&part.program);
    assert!(
        !report.has_errors(),
        "{name} [{}]: checker rejected emitted program:\n{report}\n{}",
        policy.stable_key(),
        part.source
    );

    let sc_prog = assemble(src, AsmMode::Scalar).expect("original source assembles as scalar");
    let opts = ValidateOpts::default();
    let regions = [data_window(&sc_prog)];
    let outcome = validate_pair(
        &part.program,
        &sc_prog,
        &regions,
        false,
        &opts,
        &partition_config_points(&opts),
    );
    assert!(
        outcome.pass,
        "{name} [{}]: {}: {}\n{}",
        policy.stable_key(),
        outcome.verdict,
        outcome.detail,
        part.source
    );
}

#[test]
fn fuzz_corpus_partitions_and_matches_scalar_reference() {
    for seed in 0..24u64 {
        let src = render(&generate(seed, false));
        for policy in policy_points() {
            partition_and_validate(&format!("fuzz seed {seed}"), &src, &policy);
        }
    }
}

#[test]
fn workload_suite_partitions_and_matches_scalar_reference() {
    for w in suite(Scale::Test) {
        for policy in [
            PartitionPolicy::default(),
            PartitionPolicy { max_task_instrs: 8, call_split: true, ..Default::default() },
        ] {
            partition_and_validate(w.name, &w.source, &policy);
        }
    }
}

#[test]
fn partitioned_output_is_deterministic() {
    let w = suite(Scale::Test).into_iter().find(|w| w.name == "Wc").expect("wc workload");
    let policy = PartitionPolicy::default();
    let a = partition_source(&w.source, &policy).unwrap();
    let b = partition_source(&w.source, &policy).unwrap();
    assert_eq!(a.source, b.source);
    assert_eq!(a.entries, b.entries);
}
