//! Adversarial recovery tests: programs engineered to force control
//! mispredictions, memory-order violations, ARB capacity stalls and deep
//! call/return chains must still produce exactly the sequential results.

use ms_asm::{assemble, AsmMode};
use ms_isa::Reg;
use multiscalar::{FaultInjector, Processor, ScalarProcessor, SimConfig};

fn run_both(src: &str, units: usize) -> (Processor, ScalarProcessor) {
    let ms = assemble(src, AsmMode::Multiscalar).expect("ms assembles");
    let sc = assemble(src, AsmMode::Scalar).expect("scalar assembles");
    let mut p =
        Processor::new(ms, SimConfig::multiscalar(units).max_cycles(20_000_000)).expect("build ms");
    p.run().expect("ms run");
    let mut s =
        ScalarProcessor::new(sc, SimConfig::scalar().max_cycles(20_000_000)).expect("build sc");
    s.run().expect("scalar run");
    (p, s)
}

#[test]
fn alternating_task_successors_force_mispredicts_and_recover() {
    // The loop alternates between two continuation tasks based on parity:
    // the pattern is learnable, but the cold predictor mispredicts first.
    let src = "
.data
tally: .word 0, 0
.text
main:
.task targets=STEP create=$16,$20
INIT:
    li!f $16, 64
    li!f $20, 0
    b!s  STEP
.task targets=EVEN,ODD create=$20
STEP:
    addiu!f $20, $20, 1
    andi $9, $20, 1
    bne!st $9, $0, ODD
    j!s  EVEN
.task targets=STEP,FIN create=
EVEN:
    la  $10, tally
    lw  $11, 0($10)
    addiu $11, $11, 1
    sw  $11, 0($10)
    bne!st $20, $16, STEP
    j!s FIN
.task targets=STEP,FIN create=
ODD:
    la  $10, tally
    lw  $11, 4($10)
    addiu $11, $11, 2
    sw  $11, 4($10)
    bne!st $20, $16, STEP
    j!s FIN
.task targets=halt create=
FIN:
    halt
";
    let (p, s) = run_both(src, 4);
    let tally = p.program().symbol("tally").unwrap();
    assert_eq!(p.memory().read_le(tally, 4), 32); // evens
    assert_eq!(p.memory().read_le(tally + 4, 4), 64); // odds * 2
    assert_eq!(s.memory().read_le(tally, 4), 32);
    assert_eq!(s.memory().read_le(tally + 4, 4), 64);
}

#[test]
fn serial_memory_chain_recovers_through_violations() {
    // Every task increments the same cell: maximal memory-order hazard.
    let src = "
.data
cell: .word 0
.text
main:
.task targets=LOOP create=$16,$20
INIT:
    li!f $16, 100
    li!f $20, 0
    b!s  LOOP
.task targets=LOOP,FIN create=$20
LOOP:
    addiu!f $20, $20, 1
    la  $9, cell
    lw  $10, 0($9)
    addiu $10, $10, 1
    sw  $10, 0($9)
    bne!s $20, $16, LOOP
.task targets=halt create=
FIN:
    halt
";
    for units in [2usize, 4, 8] {
        let (p, _) = run_both(src, units);
        let cell = p.program().symbol("cell").unwrap();
        assert_eq!(p.memory().read_le(cell, 4), 100, "@{units} units");
    }
}

#[test]
fn tiny_arb_forces_capacity_stalls_but_stays_correct() {
    // Each task writes a wide swath of memory; an ARB with very few lines
    // per bank must stall speculative units (never the head) and still
    // finish correctly.
    let src = "
.data
buf: .space 4096
.text
main:
.task targets=LOOP create=$16,$20,$22
INIT:
    li!f $16, 16
    li!f $20, 0
    la!f $22, buf
    b!s  LOOP
.task targets=LOOP,FIN create=$20,$22
LOOP:
    addiu!f $20, $20, 1
    move    $8, $22          ; local copy (paper Section 3.2.2), then
    addiu!f $22, $22, 256    ; forward the cursor early so tasks overlap
    li   $9, 0
FILL:
    addu $10, $8, $9
    sw   $20, 0($10)
    addiu $9, $9, 4
    slti $11, $9, 256
    bne  $11, $0, FILL
    bne!s $20, $16, LOOP
.task targets=halt create=
FIN:
    halt
";
    let ms = assemble(src, AsmMode::Multiscalar).unwrap();
    let mut cfg = SimConfig::multiscalar(4);
    cfg.arb_capacity = 4; // 4 lines per bank: pathologically small
    let mut p = Processor::new(ms, cfg).unwrap();
    let stats = p.run().expect("run with tiny ARB");
    let buf = p.program().symbol("buf").unwrap();
    for i in 0..16u64 {
        for off in (0..256u32).step_by(4) {
            assert_eq!(p.memory().read_le(buf + i as u32 * 256 + off, 4), i + 1);
        }
    }
    assert!(stats.arb.full_events > 0, "expected ARB capacity pressure");
    assert!(stats.breakdown.no_comp_arb > 0, "expected ARB stall cycles in the breakdown");
}

#[test]
fn call_return_task_chains_use_the_ras() {
    // A chain of call tasks: main -> f -> g, with returns predicted
    // through the sequencer's return-address stack.
    let src = "
.data
res: .word 0
.text
main:
.task targets=F create=$4,$31
    li!f $4, 5
    jal!f!s F
.task targets=halt create=
BACK:
    la  $9, res
    sw  $2, 0($9)
    halt
.task targets=G create=$4,$29,$31
F:
    addiu!f $29, $29, -8     ; non-leaf: save the caller's return address
    sd      $31, 0($29)
    addiu!f $4, $4, 1
    jal!f!s G
.task targets=ret create=$2,$29
FBACK:
    addiu!f $2, $2, 100
    ld      $31, 0($29)      ; restore the caller's return address
    addiu!f $29, $29, 8
    jr!s $31
.task targets=ret create=$2
G:
    mul!f $2, $4, $4
    jr!s $31
";
    let (p, s) = run_both(src, 4);
    let res = p.program().symbol("res").unwrap();
    // g computes (5+1)^2 = 36; fback adds 100 -> 136.
    assert_eq!(p.memory().read_le(res, 4), 136);
    assert_eq!(s.memory().read_le(res, 4), 136);
    assert_eq!(p.final_regs().unwrap()[2], s.reg(Reg::int(2)));
}

#[test]
fn store_load_forwarding_across_tasks_is_exact() {
    // Producer task stores a pattern; consumer tasks load with different
    // widths and alignments — the ARB must forward bytes exactly.
    let src = "
.data
slot: .dword 0
out:  .space 64
.text
main:
.task targets=PROD create=$22
INIT:
    la!f $22, out
    b!s  PROD
.task targets=CONS create=
PROD:
    la  $9, slot
    li  $10, 0x1234
    sll $10, $10, 16
    li  $11, 0x5678
    or  $10, $10, $11       ; 0x12345678
    sw  $10, 0($9)
    li  $11, -2
    sb  $11, 5($9)
    b!s CONS
.task targets=halt create=
CONS:
    la  $9, slot
    lw  $12, 0($9)
    sw  $12, 0($22)
    lbu $12, 1($9)
    sw  $12, 4($22)
    lh  $12, 4($9)
    sw  $12, 8($22)
    ld  $12, 0($9)
    sd  $12, 16($22)
    halt
";
    let (p, s) = run_both(src, 4);
    let out = p.program().symbol("out").unwrap();
    for off in [0u32, 4, 8, 16] {
        assert_eq!(
            p.memory().read_le(out + off, 8),
            s.memory().read_le(out + off, 8),
            "offset {off}"
        );
    }
    assert_eq!(p.memory().read_le(out, 4), 0x1234_5678);
    assert_eq!(p.memory().read_le(out + 4, 4), 0x56);
    // lh at 4: bytes are [00, fe] -> sign-extended 0xfffffe00 truncated to u32.
    assert_eq!(p.memory().read_le(out + 8, 4), 0xffff_fe00);
}

/// Forces the sequencer wrong at *every* task boundary with a choice:
/// whatever the predictor says, pick the next target instead.
struct AlwaysWrong;

impl FaultInjector for AlwaysWrong {
    fn override_prediction(
        &mut self,
        _now: u64,
        _order: u64,
        _entry: u32,
        ntargets: usize,
        predicted: usize,
    ) -> usize {
        if ntargets > 1 {
            (predicted + 1) % ntargets
        } else {
            predicted
        }
    }
}

#[test]
fn forced_mispredict_at_every_boundary_still_sequential() {
    // The worst case for control speculation: every multi-target boundary
    // is predicted wrong, so every such task is squashed and re-dispatched
    // down the resolved path. Architectural results must be untouched, at
    // any unit count.
    let src = "
.data
tally: .word 0, 0
.text
main:
.task targets=STEP create=$16,$20
INIT:
    li!f $16, 24
    li!f $20, 0
    b!s  STEP
.task targets=EVEN,ODD create=$20
STEP:
    addiu!f $20, $20, 1
    andi $9, $20, 1
    bne!st $9, $0, ODD
    j!s  EVEN
.task targets=STEP,FIN create=
EVEN:
    la  $10, tally
    lw  $11, 0($10)
    addiu $11, $11, 1
    sw  $11, 0($10)
    bne!st $20, $16, STEP
    j!s FIN
.task targets=STEP,FIN create=
ODD:
    la  $10, tally
    lw  $11, 4($10)
    addiu $11, $11, 2
    sw  $11, 4($10)
    bne!st $20, $16, STEP
    j!s FIN
.task targets=halt create=
FIN:
    halt
";
    let sc = assemble(src, AsmMode::Scalar).unwrap();
    let mut s = ScalarProcessor::new(sc, SimConfig::scalar().max_cycles(20_000_000)).unwrap();
    s.run().expect("scalar run");

    for units in [2usize, 4, 8] {
        let ms = assemble(src, AsmMode::Multiscalar).unwrap();
        let cfg = SimConfig::multiscalar(units).max_cycles(20_000_000);
        let mut p = Processor::with_injector(ms, cfg, AlwaysWrong).unwrap();
        let stats = p.run().expect("ms run under forced mispredicts");
        assert!(stats.tasks_squashed > 0, "@{units}: the sweep must actually squash");
        let tally = p.program().symbol("tally").unwrap();
        for off in [0u32, 4] {
            assert_eq!(
                p.memory().read_le(tally + off, 4),
                s.memory().read_le(tally + off, 4),
                "@{units} units, offset {off}"
            );
        }
    }
}
