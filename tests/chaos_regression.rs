//! Fixed-seed chaos regression: a small fault-injection campaign pinned
//! to specific seeds. Guards two properties end to end:
//!
//! 1. every (workload x plan x seed) point preserves sequential semantics
//!    under injected mispredictions, ring jitter/back-pressure, ARB
//!    capacity pressure and spurious squash waves;
//! 2. the campaign is deterministic — the same seeds produce a
//!    byte-identical report, so any future divergence is a regression in
//!    the simulator or the plans, not noise.
//!
//! Seed 4 of the gcc/storm point is the one that exposed the stale
//! ring-delivery hazard this suite was built to catch (a delayed message
//! skipping past a re-assigned producer's unit); keep it pinned.

use ms_chaos::{run_campaign, Campaign, FaultPlan};

#[test]
fn fixed_seed_campaign_passes_and_is_deterministic() {
    let c = Campaign {
        workloads: vec!["wc".into(), "cmp".into(), "gcc".into()],
        plans: vec!["mispredict".into(), "ring".into(), "storm".into()],
        seeds: 4,
        ..Campaign::default()
    };
    let r1 = run_campaign(&c).expect("campaign runs");
    assert_eq!(r1.failures(), 0, "oracle violation:\n{}", r1.to_json());
    let r2 = run_campaign(&c).expect("campaign runs");
    assert_eq!(r1.to_json(), r2.to_json(), "same seeds must give a byte-identical report");
}

#[test]
fn stale_ring_delivery_regression_stays_fixed() {
    // The exact point that first corrupted architectural state (word
    // count off by three in wc, then gcc's hash state under storm).
    let c = Campaign {
        workloads: vec!["gcc".into()],
        plans: vec!["storm".into()],
        seeds: 1,
        seed_base: 4,
        ..Campaign::default()
    };
    let r = run_campaign(&c).expect("campaign runs");
    assert_eq!(r.failures(), 0, "stale ring delivery resurfaced:\n{}", r.to_json());
}

/// Fault plans are cycle-indexed, so the skip-ahead scheduler hard-gates
/// itself off whenever an injector is live (DESIGN.md §13): jumping the
/// clock would skip the exact cycles a plan was going to perturb.
/// This point proves the gate — a chaotic run must be byte-identical
/// whether the config asks for skip-ahead or not.
#[test]
fn fault_plans_reproduce_identically_under_skip_ahead_config() {
    use ms_sweep::statsio::stats_to_json;
    let w = ms_workloads::by_name("gcc", ms_workloads::Scale::Test).expect("gcc exists");
    let cfg = multiscalar::SimConfig::multiscalar(4);
    let (skipped, _) = w
        .run_multiscalar_with_injector(cfg.skip_ahead(true), FaultPlan::storm(4))
        .expect("chaotic run (skip-ahead config)");
    let (ticked, _) = w
        .run_multiscalar_with_injector(cfg.skip_ahead(false), FaultPlan::storm(4))
        .expect("chaotic run (ticked config)");
    assert_eq!(
        stats_to_json(&skipped),
        stats_to_json(&ticked),
        "a fault plan diverged under the skip-ahead config — the injector gate is broken"
    );
}
