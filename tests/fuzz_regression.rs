//! Pinned regression tests for bugs found by the `ms-fuzz` differential
//! fuzzer. Each test embeds the minimized `.s` repro checked in under
//! `tests/repros/` so the bug stays fixed even if the generator or the
//! corpus seeds drift.

use ms_asm::{assemble, AsmMode};
use ms_cfg::{check_program, Severity};
use ms_fuzz::diff::{validate_source, ValidateOpts};
use multiscalar::{Processor, ScalarProcessor, SimConfig};

const OOO_RELEASE_RAW: &str = include_str!("repros/ooo_release_raw.s");
const STALE_FORWARD: &str = include_str!("repros/stale_forward.s");

fn opts() -> ValidateOpts {
    ValidateOpts { max_cycles: 1_000_000, watchdog: 200_000 }
}

/// The out-of-order release RAW bug (`msfuzz --repro-seed
/// 4298001007915928899`): `release` declared no source registers, so
/// the OoO hazard check let it issue past the older callee writes to
/// $2/$3 and broadcast stale values. The full differential harness must
/// now accept the repro at every configuration point.
#[test]
fn ooo_release_reads_its_registers_before_issuing() {
    let outcome = validate_source(OOO_RELEASE_RAW, false, &opts());
    assert!(outcome.pass, "repro failed again: {} ({})", outcome.verdict, outcome.detail);
    assert_eq!(outcome.verdict, "ok");
}

/// The same repro checked directly at the configuration that exposed
/// the bug: four units, out-of-order, single issue. Final $2 comes from
/// the last loop iteration's `sltu` inside the callee and must match
/// the scalar reference.
#[test]
fn ooo_release_repro_matches_scalar_at_four_units() {
    let ms = assemble(OOO_RELEASE_RAW, AsmMode::Multiscalar).expect("assemble ms");
    let sc = assemble(OOO_RELEASE_RAW, AsmMode::Scalar).expect("assemble scalar");
    let cfg = SimConfig::multiscalar(4).out_of_order(true).max_cycles(1_000_000);
    let mut p = Processor::new(ms, cfg).expect("build ms");
    p.run().expect("ms run");
    let mut s =
        ScalarProcessor::new(sc, SimConfig::scalar().max_cycles(1_000_000)).expect("build scalar");
    s.run().expect("scalar run");
    let regs = p.final_regs().expect("halted");
    let r2 = ms_isa::Reg::int(2);
    assert_eq!(regs[2], s.reg(r2), "$2 diverged from the scalar reference again");
}

/// The stale-forward annotation bug class: a forward bit on a
/// non-final write used to pass the checker silently while the
/// simulator sent the stale value to every successor. The checker's
/// stale-communication rule must reject the minimized repro.
#[test]
fn stale_forward_repro_is_rejected_statically() {
    let prog = assemble(STALE_FORWARD, AsmMode::Multiscalar).expect("assemble ms");
    let report = check_program(&prog);
    let errors: Vec<String> = report.of_severity(Severity::Error).map(|d| d.to_string()).collect();
    assert!(!errors.is_empty(), "the stale forward went unflagged again");
    assert!(
        errors.iter().any(|e| e.contains("stale")),
        "expected a stale-communication diagnostic, got: {errors:?}"
    );
    // Under adversarial expectations the harness counts this as caught.
    let outcome = validate_source(STALE_FORWARD, true, &opts());
    assert!(outcome.pass);
    assert_eq!(outcome.verdict, "caught-static");
}

/// Documents *why* the stale forward must be a static error: run
/// unchecked, the multiscalar result really does diverge (successors see
/// the forwarded 1, the scalar reference computes 2).
#[test]
fn stale_forward_repro_really_diverges_at_runtime() {
    let ms = assemble(STALE_FORWARD, AsmMode::Multiscalar).expect("assemble ms");
    let sc = assemble(STALE_FORWARD, AsmMode::Scalar).expect("assemble scalar");
    let out = ms.symbol("out").expect("out symbol");
    let mut p =
        Processor::new(ms, SimConfig::multiscalar(4).max_cycles(100_000)).expect("build ms");
    p.run().expect("ms run");
    let mut s =
        ScalarProcessor::new(sc, SimConfig::scalar().max_cycles(100_000)).expect("build scalar");
    s.run().expect("scalar run");
    assert_eq!(s.memory().read_le(out, 8), 2, "scalar reference result changed");
    assert_eq!(
        p.memory().read_le(out, 8),
        1,
        "the multiscalar run no longer shows the stale forward; update this pin"
    );
}
